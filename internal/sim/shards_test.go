package sim

import (
	"math/rand"
	"sort"
	"testing"

	"ioguard/internal/slot"
)

// probe is a test component with a fixed plan of internal work slots.
// It fails the test if a planned slot is skipped over, and checks that
// SkipTo spans never cover planned work.
type probe struct {
	t    *testing.T
	name string
	work []slot.Time // sorted slots with internal work
	wi   int

	stepped int64
	skipped slot.Time
	log     *[]exec // shared execution log, appended to on every Step
	idx     int
}

type exec struct {
	at    slot.Time
	shard int
}

func (p *probe) Step(now slot.Time) {
	p.stepped++
	if p.log != nil {
		*p.log = append(*p.log, exec{at: now, shard: p.idx})
	}
	for p.wi < len(p.work) && p.work[p.wi] <= now {
		if p.work[p.wi] < now {
			p.t.Errorf("%s: work at %d executed late at %d", p.name, p.work[p.wi], now)
		}
		p.wi++
	}
}

func (p *probe) NextWork(now slot.Time) slot.Time {
	if p.wi >= len(p.work) {
		return slot.Never
	}
	if p.work[p.wi] < now {
		return now
	}
	return p.work[p.wi]
}

func (p *probe) SkipTo(from, to slot.Time) {
	p.skipped += to - from
	if p.wi < len(p.work) && p.work[p.wi] < to {
		p.t.Errorf("%s: SkipTo(%d,%d) jumps over work at %d", p.name, from, to, p.work[p.wi])
	}
}

// TestShardSetDecoupling: one shard busy every slot must not force
// dense stepping of an almost-idle peer — the exact failure mode of
// the global-min fast-forward this scheduler replaces.
func TestShardSetDecoupling(t *testing.T) {
	const horizon = 10_000
	busyPlan := make([]slot.Time, horizon)
	for i := range busyPlan {
		busyPlan[i] = slot.Time(i)
	}
	busy := &probe{t: t, name: "busy", work: busyPlan}
	idle := &probe{t: t, name: "idle", work: []slot.Time{0, 4000, 9999}}

	s := NewShardSet()
	s.Add(busy)
	s.Add(idle)
	s.Run(horizon, nil, nil)

	if busy.stepped != horizon {
		t.Errorf("busy shard stepped %d slots, want %d", busy.stepped, horizon)
	}
	if busy.wi != len(busy.work) || idle.wi != len(idle.work) {
		t.Errorf("unfinished work: busy %d/%d, idle %d/%d",
			busy.wi, len(busy.work), idle.wi, len(idle.work))
	}
	if idle.stepped+int64(idle.skipped) != horizon {
		t.Errorf("idle shard stepped %d + skipped %d ≠ horizon %d",
			idle.stepped, idle.skipped, horizon)
	}
	if idle.stepped > 10 {
		t.Errorf("idle shard stepped %d slots next to a busy peer; decoupling failed", idle.stepped)
	}
	st := s.Stats(1)
	if st.Stepped != idle.stepped || st.Skipped != idle.skipped {
		t.Errorf("Stats(1) = %+v, want {%d %d}", st, idle.stepped, idle.skipped)
	}
}

// TestShardSetExecutionOrder: the executed (slot, shard) pairs must
// come out in lexicographic order — the property that makes the
// decoupled interleaving identical to a dense loop that steps shards
// in registration order within each slot (and thus keeps collector
// output byte-identical without any re-sorting).
func TestShardSetExecutionOrder(t *testing.T) {
	const horizon = 2000
	rng := rand.New(rand.NewSource(99))
	var log []exec
	s := NewShardSet()
	for i := 0; i < 5; i++ {
		var plan []slot.Time
		for at := slot.Time(rng.Intn(10)); at < horizon; at += slot.Time(1 + rng.Intn(97)) {
			plan = append(plan, at)
		}
		p := &probe{t: t, name: "p", work: plan, log: &log, idx: i}
		p.idx = s.Add(p)
	}
	s.Run(horizon, nil, nil)
	if !sort.SliceIsSorted(log, func(a, b int) bool {
		if log[a].at != log[b].at {
			return log[a].at < log[b].at
		}
		return log[a].shard < log[b].shard
	}) {
		t.Fatal("execution log is not sorted by (slot, shard)")
	}
}

// sink is a purely input-driven component: it has no internal work and
// must be woken by the horizon exactly at each input's arrival slot.
type sink struct {
	t        *testing.T
	inputs   []slot.Time // sorted arrival slots
	ii       int         // next input not yet consumed (advanced by feed)
	consumed int
}

func (k *sink) Step(now slot.Time) {}
func (k *sink) NextWork(now slot.Time) slot.Time {
	return slot.Never
}

// TestShardSetHorizon: a shard with no internal work still may not
// run past an upstream input — the HorizonFunc must wake it at every
// arrival slot, even a conservative horizon that sometimes wakes it
// early.
func TestShardSetHorizon(t *testing.T) {
	const horizon = 50_000
	rng := rand.New(rand.NewSource(7))
	var ks []*sink
	s := NewShardSet()
	for i := 0; i < 3; i++ {
		var in []slot.Time
		for at := slot.Time(rng.Intn(500)); at < horizon; at += slot.Time(100 + rng.Intn(5000)) {
			in = append(in, at)
		}
		k := &sink{t: t, inputs: in}
		ks = append(ks, k)
		s.Add(k)
	}
	conservative := rand.New(rand.NewSource(8))
	feed := func(i int, now slot.Time) {
		k := ks[i]
		for k.ii < len(k.inputs) && k.inputs[k.ii] <= now {
			if k.inputs[k.ii] < now {
				t.Fatalf("shard %d: input at %d delivered late at %d", i, k.inputs[k.ii], now)
			}
			k.ii++
			k.consumed++
		}
	}
	hz := func(i int, limit slot.Time) slot.Time {
		k := ks[i]
		if k.ii >= len(k.inputs) {
			return limit
		}
		next := k.inputs[k.ii]
		if next > limit {
			return limit
		}
		// Occasionally under-report to model a conservative bound: the
		// shard wakes early, finds nothing, and re-queries.
		if conservative.Intn(4) == 0 && next > 0 {
			return next - slot.Time(conservative.Intn(int(next)+1))
		}
		return next
	}
	s.Run(horizon, feed, hz)
	for i, k := range ks {
		if k.consumed != len(k.inputs) {
			t.Errorf("shard %d consumed %d/%d inputs", i, k.consumed, len(k.inputs))
		}
		st := s.Stats(i)
		if st.Stepped+int64(st.Skipped) != horizon {
			t.Errorf("shard %d: stepped %d + skipped %d ≠ %d", i, st.Stepped, st.Skipped, horizon)
		}
		if st.Stepped == horizon {
			t.Errorf("shard %d never fast-forwarded", i)
		}
	}
}
