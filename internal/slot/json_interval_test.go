// Decode-validation tests for both table encodings: the decoder must
// never trust wire state — owners, interval structure, and the free
// count are all re-derived and checked.
package slot

import (
	"encoding/json"
	"strings"
	"testing"
)

// TestIntervalJSONRoundTrip: marshal emits the compact interval form
// and decoding restores an identical table.
func TestIntervalJSONRoundTrip(t *testing.T) {
	tab := NewTable(12)
	for _, s := range []Time{0, 1, 5, 6, 7, 11} {
		if err := tab.Assign(s, TaskID(int(s)%3)); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"runs"`) || strings.Contains(string(blob), `"slots"`) {
		t.Fatalf("wire form is not the interval encoding: %s", blob)
	}
	var back Table
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.String() != tab.String() || back.FreeCount() != tab.FreeCount() || back.Len() != tab.Len() {
		t.Fatalf("round-trip changed the table:\n in  %s free=%d\n out %s free=%d",
			tab, tab.FreeCount(), &back, back.FreeCount())
	}
}

// TestLegacyDenseDecode: the old {"slots":[...]} form still decodes,
// with the free count recomputed rather than trusted.
func TestLegacyDenseDecode(t *testing.T) {
	var tab Table
	if err := json.Unmarshal([]byte(`{"slots":[-1,0,0,-1,2,-1]}`), &tab); err != nil {
		t.Fatal(err)
	}
	if tab.Len() != 6 || tab.FreeCount() != 3 {
		t.Fatalf("len=%d free=%d, want 6/3", tab.Len(), tab.FreeCount())
	}
	if got, want := tab.String(), "|.|0|0|.|2|.|"; got != want {
		t.Fatalf("decoded %s, want %s", got, want)
	}
	if tab.RunCount() != 5 {
		t.Fatalf("RunCount=%d, want 5", tab.RunCount())
	}
}

// TestIntervalDecodeRecomputesFree: the interval decoder derives the
// free count from the runs and merges non-canonical same-owner
// neighbours.
func TestIntervalDecodeRecomputesFree(t *testing.T) {
	var tab Table
	if err := json.Unmarshal([]byte(`{"h":8,"runs":[[0,2,-1],[2,2,0],[4,2,0],[6,2,-1]]}`), &tab); err != nil {
		t.Fatal(err)
	}
	if tab.FreeCount() != 4 {
		t.Fatalf("free=%d, want 4", tab.FreeCount())
	}
	if tab.RunCount() != 3 { // [0,2) free, [2,6) task 0 merged, [6,8) free
		t.Fatalf("RunCount=%d, want 3 (same-owner neighbours merged)", tab.RunCount())
	}
	if got, want := tab.String(), "|.|.|0|0|0|0|.|.|"; got != want {
		t.Fatalf("decoded %s, want %s", got, want)
	}
}

// TestIntervalJSONMalformed enumerates the rejection paths of both
// decoders.
func TestIntervalJSONMalformed(t *testing.T) {
	cases := []struct {
		name string
		blob string
	}{
		{"dense invalid id", `{"slots":[-2,0]}`},
		{"negative h", `{"h":-3,"runs":[]}`},
		{"short coverage", `{"h":5,"runs":[[0,2,-1]]}`},
		{"gap between runs", `{"h":5,"runs":[[0,2,-1],[3,2,0]]}`},
		{"overlapping runs", `{"h":5,"runs":[[0,3,-1],[2,3,0]]}`},
		{"zero length run", `{"h":5,"runs":[[0,2,-1],[2,0,0],[2,3,1]]}`},
		{"negative length run", `{"h":5,"runs":[[0,7,-1],[7,-2,0]]}`},
		{"owner below Free", `{"h":5,"runs":[[0,5,-2]]}`},
		{"owner overflows TaskID", `{"h":5,"runs":[[0,5,4294967296]]}`},
		{"overrun past h", `{"h":5,"runs":[[0,9,0]]}`},
		{"runs on empty table", `{"h":0,"runs":[[0,1,0]]}`},
		{"not json", `{"h":5,"runs":[[0`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var tab Table
			if err := json.Unmarshal([]byte(tc.blob), &tab); err == nil {
				t.Fatalf("decoded malformed input %s into %s", tc.blob, &tab)
			}
		})
	}
}

// TestIntervalJSONEmptyForms: both empty encodings decode to the
// zero-length table, and an empty table survives a round-trip.
func TestIntervalJSONEmptyForms(t *testing.T) {
	for _, blob := range []string{`{}`, `{"slots":null}`, `{"slots":[]}`, `{"h":0,"runs":[]}`} {
		var tab Table
		if err := json.Unmarshal([]byte(blob), &tab); err != nil {
			t.Fatalf("%s: %v", blob, err)
		}
		if tab.Len() != 0 || tab.FreeCount() != 0 || tab.RunCount() != 0 {
			t.Fatalf("%s decoded to non-empty table", blob)
		}
	}
	blob, err := json.Marshal(NewTable(0))
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != 0 {
		t.Fatalf("empty round-trip produced %d slots", back.Len())
	}
}
