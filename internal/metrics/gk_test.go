package metrics

import (
	"math"
	"math/rand"
	"testing"
)

// TestGKQuantileCeilTolerance pins the query band to the documented
// ⌈εn⌉ contract at a boundary where the old floored-strict arithmetic
// selects a different tuple. With εn integral (ε = 0.1, n = 30, εn = 3)
// the floored tolerance combined with a strict compare searched a band
// of width ⌊εn⌋+1 = 4 — one rank past the documented edge — while the
// ⌈εn⌉ band stops exactly at target+3. The summary below (minimum
// ranks 1, 5, 11, 15, 21, 27, 30; every interior tuple respects
// g+Δ ≤ ⌊2εn⌋ = 6) queries target rank 8: the successor with maximum
// rank 11 sits exactly on the band edge, so the ⌈εn⌉ scan stops at the
// rank-5 tuple, whereas the floored-strict scan stepped past it and
// returned the rank-11 tuple.
func TestGKQuantileCeilTolerance(t *testing.T) {
	s := &GKSketch{eps: 0.1, n: 30}
	for i, g := range []int64{1, 4, 6, 4, 6, 6, 3} {
		s.tuples = append(s.tuples, gkTuple{v: float64((i + 1) * 10), g: g})
	}
	// q·n = 8 exactly; both candidate tuples lie within ⌈εn⌉ ranks of
	// the target, so the selection pins the tolerance arithmetic alone.
	if got := s.Quantile(8.0 / 30); got != 20 {
		t.Fatalf("Quantile(8/30) = %v, want 20 (rank-5 tuple: the rank-11 successor sits on the ⌈εn⌉ band edge; the floored-strict band scanned past it and returned 30)", got)
	}
}

// TestGKTuplesLazyCompress: Tuples() and Quantile() must answer from a
// compressed summary even when called between the amortized
// insert-cadence compressions, so the documented O((1/ε)·log(εn))
// size bound holds at any query point mid-stream.
func TestGKTuplesLazyCompress(t *testing.T) {
	const eps = 0.01 // compression cadence: every 50 inserts
	s := NewGKSketch(eps)
	rng := rand.New(rand.NewSource(17))
	for i := 1; i <= 20_000; i++ {
		s.Add(rng.Float64() * 1e6)
		if i%137 != 0 { // 137 is coprime to the cadence: queries land mid-stream
			continue
		}
		bound := int(math.Ceil(11 / (2 * eps) * math.Log2(2*eps*float64(i)+4)))
		if got := s.Tuples(); got > bound {
			t.Fatalf("mid-stream Tuples() = %d after %d inserts exceeds (11/2ε)·log₂(2εn) = %d", got, i, bound)
		}
		if s.pending != 0 {
			t.Fatalf("Tuples() left %d inserts uncompressed after %d inserts", s.pending, i)
		}
	}
	for s.pending == 0 {
		s.Add(rng.Float64() * 1e6)
	}
	s.Quantile(0.5)
	if s.pending != 0 {
		t.Fatalf("Quantile() left %d inserts uncompressed", s.pending)
	}
}
