package experiments

import (
	"reflect"
	"strings"
	"testing"
)

// TestRobustnessDeterministicAcrossWorkers pins the robustness sweep's
// fold contract: any (workers, shard-workers) pair renders the
// identical table, faulted scenarios carry fault summaries for every
// system, and the clean scenario still reports timing accuracy.
func TestRobustnessDeterministicAcrossWorkers(t *testing.T) {
	cfg := RobustnessConfig{
		VMs:          2,
		Util:         0.8,
		Trials:       2,
		HyperPeriods: 1,
		Seed:         5,
		Scenarios:    []string{"clean", "storm"},
	}
	base, err := Robustness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range base {
		switch p.Scenario {
		case "storm":
			if p.Agg.FaultTrials != cfg.Trials {
				t.Errorf("%s/%s: fault trials = %d, want %d", p.Scenario, p.System, p.Agg.FaultTrials, cfg.Trials)
			}
		case "clean":
			if p.Agg.FaultTrials != 0 {
				t.Errorf("clean/%s: fault trials = %d", p.System, p.Agg.FaultTrials)
			}
		}
		if p.Agg.Accuracy.N() == 0 {
			t.Errorf("%s/%s: no accuracy fold", p.Scenario, p.System)
		}
	}
	want := RenderRobustness(base, cfg.VMs, cfg.Util)
	if !strings.Contains(want, "BS|PART") {
		t.Fatal("robustness table missing the partitioning baseline")
	}
	for _, alt := range []RobustnessConfig{
		{VMs: 2, Util: 0.8, Trials: 2, HyperPeriods: 1, Seed: 5, Scenarios: cfg.Scenarios, Workers: 1, ShardWorkers: 1},
		{VMs: 2, Util: 0.8, Trials: 2, HyperPeriods: 1, Seed: 5, Scenarios: cfg.Scenarios, Workers: 3, ShardWorkers: 2},
		{VMs: 2, Util: 0.8, Trials: 2, HyperPeriods: 1, Seed: 5, Scenarios: cfg.Scenarios, Dense: true},
	} {
		pts, err := Robustness(alt)
		if err != nil {
			t.Fatal(err)
		}
		if got := RenderRobustness(pts, alt.VMs, alt.Util); got != want {
			t.Fatalf("table diverged at workers=%d shard-workers=%d dense=%v:\n%s\nvs\n%s",
				alt.Workers, alt.ShardWorkers, alt.Dense, got, want)
		}
	}
}

// TestRobustnessScenarioValidation: unknown scenario names and bad
// configs surface as errors, and the scenario filter preserves menu
// order.
func TestRobustnessScenarioValidation(t *testing.T) {
	if _, err := Robustness(RobustnessConfig{VMs: 0}); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := Robustness(RobustnessConfig{VMs: 2, Scenarios: []string{"meteor"}}); err == nil {
		t.Error("unknown scenario accepted")
	}
	if _, err := Robustness(RobustnessConfig{VMs: 2, Systems: []string{"BS|NOPE"}}); err == nil {
		t.Error("unknown system accepted")
	}
	pts, err := Robustness(RobustnessConfig{
		VMs: 2, Trials: 1, HyperPeriods: 1, Seed: 9,
		Systems:   []string{"I/O-GUARD-70"},
		Scenarios: []string{"drop", "jitter"}, // menu order is jitter, drop
	})
	if err != nil {
		t.Fatal(err)
	}
	var order []string
	for _, p := range pts {
		order = append(order, p.Scenario)
	}
	if !reflect.DeepEqual(order, []string{"jitter", "drop"}) {
		t.Errorf("scenario order = %v, want menu order [jitter drop]", order)
	}
}
