package workload

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"ioguard/internal/task"
)

func TestCataloguesHaveTwentyEach(t *testing.T) {
	if n := len(SafetyEntries()); n != 20 {
		t.Errorf("safety entries = %d, want 20", n)
	}
	if n := len(FunctionEntries()); n != 20 {
		t.Errorf("function entries = %d, want 20", n)
	}
}

func TestCatalogueNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, e := range append(SafetyEntries(), FunctionEntries()...) {
		if seen[e.Name] {
			t.Errorf("duplicate benchmark name %q", e.Name)
		}
		seen[e.Name] = true
	}
}

func TestCatalogueBaseUtilizationIs40Percent(t *testing.T) {
	// Sec. V-C: "overall system utilization approximately 40%".
	util := map[string]float64{}
	for _, e := range append(SafetyEntries(), FunctionEntries()...) {
		util[e.Device] += e.Utilization()
	}
	for dev, u := range util {
		if u < 0.35 || u > 0.45 {
			t.Errorf("%s base utilization %.3f outside [0.35,0.45]", dev, u)
		}
	}
	if len(util) != 2 {
		t.Errorf("catalogue should span ethernet and flexray: %v", util)
	}
}

func TestCataloguePeriodsOnLadder(t *testing.T) {
	ladder := map[int64]bool{1000: true, 2000: true, 4000: true, 8000: true, 16000: true}
	for _, e := range append(SafetyEntries(), FunctionEntries()...) {
		if !ladder[int64(e.Period)] {
			t.Errorf("%s period %d not on the harmonic ladder", e.Name, e.Period)
		}
		if e.WCET <= 0 || e.WCET > e.Period {
			t.Errorf("%s wcet %d invalid for period %d", e.Name, e.WCET, e.Period)
		}
	}
}

func TestUUniFastSumsToTotal(t *testing.T) {
	f := func(seed int64, n8 uint8, t8 uint8) bool {
		n := int(n8%8) + 1
		total := float64(t8%90)/100 + 0.05
		rng := rand.New(rand.NewSource(seed))
		us := UUniFast(rng, n, total)
		if len(us) != n {
			return false
		}
		sum := 0.0
		for _, u := range us {
			if u < 0 {
				return false
			}
			sum += u
		}
		return math.Abs(sum-total) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestUUniFastPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("UUniFast(0) should panic")
		}
	}()
	UUniFast(rand.New(rand.NewSource(1)), 0, 0.5)
}

func TestGenerateValidation(t *testing.T) {
	if _, err := Generate(Config{VMs: 0, TargetUtil: 0.5}); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := Generate(Config{VMs: 4, TargetUtil: 1.5}); err == nil {
		t.Error("utilization > 1 accepted")
	}
	// The catalogue fixes a ≈0.40 per-device floor: targets below it
	// must fail loudly (sub-floor sets come from Stretch/StretchToUtil),
	// not silently produce the floor workload.
	if _, err := Generate(Config{VMs: 4, TargetUtil: 0.3}); err == nil {
		t.Error("sub-floor target utilization accepted")
	}
	if _, err := Generate(Config{VMs: 4, TargetUtil: 0}); err == nil {
		t.Error("zero target utilization accepted")
	}
	if _, err := Generate(Config{VMs: 4, TargetUtil: 0.4, Seed: 1}); err != nil {
		t.Errorf("the floor itself must stay generable: %v", err)
	}
}

func TestStretchValidation(t *testing.T) {
	ts, err := Generate(Config{VMs: 4, TargetUtil: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Stretch(ts, 0); err == nil {
		t.Error("stretch factor 0 accepted")
	}
	same, err := Stretch(ts, 1)
	if err != nil || len(same) != len(ts) || same[0].Period != ts[0].Period {
		t.Errorf("k=1 must return the set unchanged: %v", err)
	}
	half, err := Stretch(ts, 2)
	if err != nil {
		t.Fatal(err)
	}
	for dev, u := range DeviceUtilization(half) {
		if want := DeviceUtilization(ts)[dev] / 2; math.Abs(u-want) > 1e-9 {
			t.Errorf("%s: stretched utilization %.4f, want %.4f", dev, u, want)
		}
	}
}

func TestStretchToUtil(t *testing.T) {
	ts, err := Generate(Config{VMs: 8, TargetUtil: 0.4, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	sparse, err := StretchToUtil(ts, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	for dev, u := range DeviceUtilization(sparse) {
		if u > 0.05+1e-9 {
			t.Errorf("%s: utilization %.4f exceeds the 0.05 target", dev, u)
		}
	}
	// A target at or above the current load is a no-op.
	same, err := StretchToUtil(ts, 0.9)
	if err != nil || same[0].Period != ts[0].Period {
		t.Errorf("above-load target must not stretch: %v", err)
	}
	if _, err := StretchToUtil(ts, 0); err == nil {
		t.Error("non-positive target accepted")
	}
}

func TestGenerateHitsTargetUtilization(t *testing.T) {
	for _, target := range []float64{0.4, 0.55, 0.7, 0.85, 1.0} {
		ts, err := Generate(Config{VMs: 4, TargetUtil: target, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		for dev, u := range DeviceUtilization(ts) {
			if math.Abs(u-target) > 0.05 {
				t.Errorf("target %.2f: %s utilization %.3f off by more than 0.05", target, dev, u)
			}
		}
	}
}

func TestGenerateTaskProperties(t *testing.T) {
	ts, err := Generate(Config{VMs: 8, TargetUtil: 0.8, Seed: 7, SyntheticJitter: 100})
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(ts) < 40 {
		t.Fatalf("generated %d tasks, want ≥ 40", len(ts))
	}
	safety := ts.Filter(func(tk task.Sporadic) bool { return tk.Kind == task.Safety })
	function := ts.Filter(func(tk task.Sporadic) bool { return tk.Kind == task.Function })
	if len(safety) != 20 || len(function) != 20 {
		t.Errorf("catalogue tasks = %d safety / %d function", len(safety), len(function))
	}
	for _, tk := range ts {
		if tk.Deadline != tk.Period {
			t.Errorf("%s: case-study tasks have implicit deadlines", tk.Name)
		}
		if tk.VM < 0 || tk.VM >= 8 {
			t.Errorf("%s: vm %d out of range", tk.Name, tk.VM)
		}
		if tk.Kind != task.Synthetic && tk.Jitter != 0 {
			t.Errorf("%s: catalogue tasks must be jitter-free", tk.Name)
		}
		if tk.Kind == task.Synthetic && tk.Jitter != 100 {
			t.Errorf("%s: synthetic jitter not applied", tk.Name)
		}
	}
	// Hyperperiod stays on the harmonic ladder (a divisor of 16 ms).
	if h := ts.Hyperperiod(); h <= 0 || 16000%h != 0 {
		t.Errorf("hyperperiod = %d, want a divisor of 16000", h)
	}
}

func TestGenerateVMsRoundRobin(t *testing.T) {
	ts, _ := Generate(Config{VMs: 4, TargetUtil: 0.4, Seed: 1})
	counts := map[int]int{}
	for _, tk := range ts {
		counts[tk.VM]++
	}
	if len(counts) != 4 {
		t.Fatalf("VM spread = %v", counts)
	}
	for vmID, n := range counts {
		if n < 8 {
			t.Errorf("vm %d has only %d tasks", vmID, n)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, _ := Generate(Config{VMs: 4, TargetUtil: 0.9, Seed: 5})
	b, _ := Generate(Config{VMs: 4, TargetUtil: 0.9, Seed: 5})
	if len(a) != len(b) {
		t.Fatal("same seed different task counts")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed different tasks")
		}
	}
	c, _ := Generate(Config{VMs: 4, TargetUtil: 0.9, Seed: 6})
	diff := len(a) != len(c)
	if !diff {
		for i := range a {
			if a[i] != c[i] {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Error("different seeds produced identical synthetic load")
	}
}

func TestGenerateAt40PercentHasNoSynthetic(t *testing.T) {
	ts, _ := Generate(Config{VMs: 4, TargetUtil: 0.4, Seed: 1})
	for _, tk := range ts {
		if tk.Kind == task.Synthetic {
			// Allowed only if base utilization fell short of 0.40.
			u := DeviceUtilization(ts)[tk.Device]
			if u > 0.46 {
				t.Errorf("target 0.40 overshot on %s: %.3f", tk.Device, u)
			}
		}
	}
}
