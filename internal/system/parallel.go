package system

// Deterministic parallel trial execution. Every trial owns its own
// engine, seeded RNG and Collector, so trials are embarrassingly
// parallel; the only care needed is that results are *folded* in a
// canonical order so aggregates (and any rendering built on them) are
// byte-identical regardless of scheduling. RunCells guarantees that
// by returning results indexed by their input position; ParallelSweep
// and the experiments layer fold them in input order.

import (
	"fmt"
	"runtime"
	"sync"

	"ioguard/internal/metrics"
	"ioguard/internal/task"
)

// Cell is one unit of parallel work: a (builder, trial) pair. Cells
// are independent — the runner gives each one a private copy of the
// trial's task set so concurrent trials never share mutable state.
type Cell struct {
	Build Builder
	Trial Trial
}

// CellError reports the failure of one cell, preserving the cell's
// input index so callers can attribute the error to a specific
// (utilization, trial, system) coordinate.
type CellError struct {
	Index int
	Err   error
}

func (e *CellError) Error() string {
	return fmt.Sprintf("system: cell %d: %v", e.Index, e.Err)
}

// Unwrap returns the underlying error.
func (e *CellError) Unwrap() error { return e.Err }

// RunCells executes every cell across `workers` goroutines and
// returns the trial results in input order. workers ≤ 0 selects
// runtime.GOMAXPROCS(0). Results flow back through a channel tagged
// with their cell index, so the returned slice — and anything folded
// from it in order — is independent of goroutine scheduling. When
// cells fail, the error of the lowest-indexed failing cell is
// returned (again for determinism) as a *CellError.
func RunCells(cells []Cell, workers int) ([]*metrics.TrialResult, error) {
	if len(cells) == 0 {
		return nil, nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(cells) {
		workers = len(cells)
	}
	type outcome struct {
		index int
		res   *metrics.TrialResult
		err   error
	}
	work := make(chan int)
	done := make(chan outcome)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range work {
				c := cells[i]
				// Private copy of the task set: Sporadic is a value
				// type, so a shallow copy fully isolates this trial
				// from cells sharing the same generated workload.
				c.Trial.Tasks = append(task.Set(nil), c.Trial.Tasks...)
				res, err := Run(c.Build, c.Trial)
				done <- outcome{index: i, res: res, err: err}
			}
		}()
	}
	go func() {
		for i := range cells {
			work <- i
		}
		close(work)
		wg.Wait()
		close(done)
	}()
	results := make([]*metrics.TrialResult, len(cells))
	errs := make([]error, len(cells))
	for o := range done {
		results[o.index] = o.res
		errs[o.index] = o.err
	}
	for i, err := range errs {
		if err != nil {
			return nil, &CellError{Index: i, Err: err}
		}
	}
	return results, nil
}

// trialSeed derives the seed for one trial of a sweep by running the
// (base seed, trial index) pair through a SplitMix64-style finalizer.
// An additive stride (the old base + i·7919) makes two sweeps whose
// base seeds differ by a multiple of the stride replay overlapping
// trial-seed sequences — the avalanche mix keeps every sweep's
// sequence disjoint in practice while staying a pure function of
// (base, index), so results are reproducible for any worker count.
func trialSeed(base int64, trial int) int64 {
	z := uint64(base) + (uint64(trial)+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

// SweepCells lays out the cells of one sweep: trial i runs the base
// trial with the SplitMix64-mixed seed of (tr.Seed, i). Exported so
// external executors — the trial server's batcher and job runner —
// reproduce ParallelSweep's exact seed schedule and fold order, which
// is what makes a server-executed sweep byte-identical to the CLI.
func SweepCells(build Builder, tr Trial, trials int) []Cell {
	cells := make([]Cell, 0, trials)
	for i := 0; i < trials; i++ {
		t := tr
		t.Seed = trialSeed(tr.Seed, i)
		cells = append(cells, Cell{Build: build, Trial: t})
	}
	return cells
}

// ParallelSweep is Sweep across a worker pool: `trials` independent
// seeds of one configuration run on `workers` goroutines (≤ 0 =
// GOMAXPROCS) and are folded into the aggregate in trial order, so
// the result is identical for any worker count.
func ParallelSweep(build Builder, tr Trial, trials, workers int) (*metrics.Aggregate, error) {
	results, err := RunCells(SweepCells(build, tr, trials), workers)
	if err != nil {
		return nil, err
	}
	agg := &metrics.Aggregate{}
	for _, res := range results {
		agg.AddTrial(res)
	}
	return agg, nil
}
