// The Collector: the measurement side of a trial. Systems call
// Complete from their response paths; the collector folds every
// observation into its recorders *as it arrives* (deadline
// classification, byte accounting, response/tardiness distributions,
// optional per-task stats and completion observers), so Result is a
// cheap snapshot plus the pending-job censoring sweep. Two metrics
// modes choose the recorder implementation:
//
//   - MetricsExact (default, the zero value): buffered metrics.Sample
//     recorders plus the full completion log, so percentiles are
//     exact, Each/ByTask can replay, and rendered output is
//     byte-identical to the pre-streaming collector. Memory grows
//     O(completions) with the horizon.
//   - MetricsStream: bounded-memory metrics.Streaming recorders
//     (Welford moments, exact min/max, mergeable KLL percentile
//     sketch seeded from the trial seed) and no completion log —
//     collector memory is independent of the horizon, and the
//     per-trial recorders fold into cross-trial sweep aggregates
//     without degrading ε. Counts, misses, bytes and throughput stay
//     exact; only percentile queries carry the sketch's documented
//     ε rank error.
//   - MetricsStreamGK: the pre-KLL streaming collector — same bounded
//     memory, Greenwald–Khanna percentile sketch. GK summaries cannot
//     merge, so sweep aggregates report no cross-trial quantiles;
//     kept for back-compat comparison behind -metrics stream-gk.
package system

import (
	"fmt"

	"ioguard/internal/faults"
	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// MetricsMode selects the collector's recorder implementation.
type MetricsMode uint8

// Metrics modes. The zero value is the exact buffered collector.
const (
	MetricsExact MetricsMode = iota
	MetricsStream
	MetricsStreamGK
)

// String returns the CLI spelling of the mode.
func (m MetricsMode) String() string {
	switch m {
	case MetricsExact:
		return "exact"
	case MetricsStream:
		return "stream"
	case MetricsStreamGK:
		return "stream-gk"
	default:
		return fmt.Sprintf("mode(%d)", uint8(m))
	}
}

// ParseMetricsMode parses the -metrics CLI flag.
func ParseMetricsMode(s string) (MetricsMode, error) {
	switch s {
	case "exact", "":
		return MetricsExact, nil
	case "stream", "streaming":
		return MetricsStream, nil
	case "stream-gk", "gk":
		return MetricsStreamGK, nil
	default:
		return MetricsExact, fmt.Errorf("system: unknown metrics mode %q (want exact|stream|stream-gk)", s)
	}
}

// completion pairs a finished job with its observed completion slot.
type completion struct {
	job *task.Job
	at  slot.Time
}

// Collector records observed completions. The zero value is a usable
// exact-mode collector; NewCollector pre-sizes the exact mode's
// completion log so a trial's hot path never regrows it, and
// NewStreamCollector selects the bounded-memory mode.
type Collector struct {
	mode MetricsMode
	// seed identifies the trial for the mergeable mode's sketch
	// coins; sketchSeq distinguishes the collector's recorders
	// (response, tardiness, per-task) within that identity.
	seed      uint64
	sketchSeq uint64
	// done is the exact mode's completion log, retained for Each and
	// the ByTask replay; streaming mode keeps no per-completion state.
	done []completion

	// Incremental state, updated by Complete in both modes.
	completed      int64
	bytesServed    int64
	criticalMisses int64
	otherMisses    int64
	response       metrics.Recorder
	tardiness      metrics.Recorder

	// accuracy, when tracked, records the timing-accuracy error
	// max(response − WCET, 0) per completion (nil otherwise — clean
	// runs must not shift the streaming mode's recorder seeds).
	accuracy metrics.Recorder
	// fs is the trial's fault stream; completions of injected
	// duplicates are classified against it, and misses are split into
	// fault-conditioned vs clean by re-deriving each job's perturbation.
	fs           *faults.Stream
	dupDelivered int64
	faultedMiss  int64

	// perTask accumulates per-task statistics online when enabled via
	// TrackByTask (the streaming replacement for the ByTask replay).
	perTask     map[int]*TaskStat
	trackByTask bool

	// observers receive every completion as it is recorded — the tee
	// that drives trace sinks online instead of replaying Each
	// afterwards.
	observers []func(j *task.Job, at slot.Time)
}

// maxCollectorPresize caps the pre-allocation of NewCollector: a
// degenerate horizon/period combination must not reserve unbounded
// memory up front (the slice still grows on demand past the cap).
const maxCollectorPresize = 1 << 16

// NewCollector returns an exact-mode collector with room for about n
// completions.
func NewCollector(n int) *Collector { return NewCollectorFor(MetricsExact, n) }

// NewStreamCollector returns a bounded-memory streaming collector.
func NewStreamCollector() *Collector { return NewCollectorFor(MetricsStream, 0) }

// NewCollectorFor returns a collector in the given mode; n sizes the
// exact mode's completion log and is ignored in streaming mode.
func NewCollectorFor(mode MetricsMode, n int) *Collector {
	return NewSeededCollectorFor(mode, n, 0)
}

// NewSeededCollectorFor is NewCollectorFor with the trial identity:
// seed drives the mergeable mode's sketch coins, so a trial's
// recorders — and any aggregate folded from them — are a pure
// function of (seed, completion sequence). Run threads Trial.Seed
// here; the unseeded constructors keep seed 0 for callers outside a
// trial.
func NewSeededCollectorFor(mode MetricsMode, n int, seed int64) *Collector {
	c := &Collector{mode: mode, seed: uint64(seed)}
	if mode == MetricsExact {
		if n < 0 {
			n = 0
		}
		if n > maxCollectorPresize {
			n = maxCollectorPresize
		}
		c.done = make([]completion, 0, n)
	}
	c.ensure()
	return c
}

// Mode returns the collector's metrics mode.
func (c *Collector) Mode() MetricsMode { return c.mode }

// newRecorder builds one scalar recorder for the collector's mode.
func (c *Collector) newRecorder() metrics.Recorder {
	switch c.mode {
	case MetricsStream:
		// Distinct deterministic seed per recorder: mix the trial
		// identity with the recorder ordinal.
		s := c.seed + (c.sketchSeq+1)*0x9E3779B97F4A7C15
		c.sketchSeq++
		return metrics.NewStreamingKLL(metrics.DefaultSketchEpsilon, s)
	case MetricsStreamGK:
		return metrics.NewStreaming(metrics.DefaultSketchEpsilon)
	default:
		return &metrics.Sample{}
	}
}

// ensure lazily initializes the recorders so the zero-value Collector
// stays usable.
func (c *Collector) ensure() {
	if c.response == nil {
		c.response = c.newRecorder()
		c.tardiness = c.newRecorder()
	}
}

// Observe registers fn to receive every subsequent completion as it
// is recorded — an online sink (e.g. trace.Recorder.OnComplete or
// trace.CSVSink.OnComplete) that replaces post-hoc Each replays.
func (c *Collector) Observe(fn func(j *task.Job, at slot.Time)) {
	c.observers = append(c.observers, fn)
}

// ObserveResponse tees every subsequent response-time observation
// into o (e.g. a metrics.Histogram), building distribution views
// online.
func (c *Collector) ObserveResponse(o metrics.Observer) {
	c.ensure()
	c.response = teeInto(c.response, o)
}

// ObserveTardiness tees every subsequent tardiness observation into o.
func (c *Collector) ObserveTardiness(o metrics.Observer) {
	c.ensure()
	c.tardiness = teeInto(c.tardiness, o)
}

// teeInto attaches o as a sink of r, reusing an existing Tee.
func teeInto(r metrics.Recorder, o metrics.Observer) metrics.Recorder {
	if t, ok := r.(*metrics.Tee); ok {
		t.Sinks = append(t.Sinks, o)
		return t
	}
	return metrics.NewTee(r, o)
}

// TrackAccuracy opts the collector into the ROTA-I/O timing-accuracy
// recorder. It must run before the first completion (Run calls it
// right after construction) so the recorder's sketch ordinal — and
// hence the per-task recorders' — is fixed for the whole trial.
// Untracked trials never allocate it, which keeps every pre-existing
// golden output byte-identical.
func (c *Collector) TrackAccuracy() {
	c.ensure()
	if c.accuracy == nil {
		c.accuracy = c.newRecorder()
	}
}

// SetFaultStream attaches the trial's fault realization so completions
// can be classified against it (duplicate detection, fault-conditioned
// misses). Run threads the stream here for faulted trials.
func (c *Collector) SetFaultStream(fs *faults.Stream) { c.fs = fs }

// TrackByTask switches ByTask to online accumulation: per-task stats
// are updated on every completion, which is the only way to get them
// in streaming mode (there is no buffer to replay).
func (c *Collector) TrackByTask() {
	if c.perTask == nil {
		c.perTask = map[int]*TaskStat{}
	}
	c.trackByTask = true
}

// critical reports whether a task's deadline misses fail the trial
// (safety and function tasks; synthetic load does not count).
func critical(t *task.Sporadic) bool {
	return t.Kind == task.Safety || t.Kind == task.Function
}

// Complete records that j's requester observed completion at slot at,
// folding the observation into every recorder immediately: deadline
// classification, bytes, response and tardiness distributions,
// tracked per-task stats, and any registered observers.
func (c *Collector) Complete(j *task.Job, at slot.Time) {
	c.ensure()
	if c.fs != nil && faults.IsDup(j) {
		// An injected duplicate completing is a phantom actuation: count
		// it, but keep it out of the completion log, the distributions
		// and the miss classification — its observable cost is the
		// device bandwidth it consumed, which the real jobs' response
		// times already reflect.
		c.dupDelivered++
		return
	}
	if c.mode == MetricsExact {
		c.done = append(c.done, completion{job: j, at: at})
	}
	c.completed++
	c.bytesServed += int64(j.Task.OpBytes)
	c.response.Add(float64(at - j.Release))
	tard := at - j.Deadline
	if tard < 0 {
		tard = 0
	}
	c.tardiness.Add(float64(tard))
	if c.accuracy != nil {
		acc := float64(at-j.Release) - float64(j.Task.WCET)
		if acc < 0 {
			acc = 0
		}
		c.accuracy.Add(acc)
	}
	missed := at > j.Deadline
	if missed {
		if critical(j.Task) {
			c.criticalMisses++
		} else {
			c.otherMisses++
		}
		if c.fs != nil && c.fs.Perturbed(j) {
			c.faultedMiss++
		}
	}
	if c.trackByTask {
		st, ok := c.perTask[j.Task.ID]
		if !ok {
			st = &TaskStat{Task: j.Task, Response: c.newRecorder()}
			c.perTask[j.Task.ID] = st
		}
		st.observe(j, at)
	}
	for _, fn := range c.observers {
		fn(j, at)
	}
}

// Completed returns the number of recorded completions.
func (c *Collector) Completed() int { return int(c.completed) }

// Each visits the recorded completions in order. Only the exact mode
// retains them; in streaming mode Each visits nothing — attach an
// Observe sink before the run instead.
func (c *Collector) Each(visit func(j *task.Job, at slot.Time)) {
	for _, d := range c.done {
		visit(d.job, d.at)
	}
}

// Result scores a finished trial: a snapshot of the incrementally
// maintained state (completed jobs were classified against their
// deadlines at the *observed* completion time), plus the censoring
// sweep — jobs still pending whose deadline has passed count as
// misses; pending jobs whose deadline lies at or beyond the horizon
// are censored.
func (c *Collector) Result(sys System, horizon slot.Time) *metrics.TrialResult {
	c.ensure()
	res := &metrics.TrialResult{
		Horizon:        horizon,
		Dropped:        sys.Dropped(),
		Completed:      c.completed,
		BytesServed:    c.bytesServed,
		CriticalMisses: c.criticalMisses,
		OtherMisses:    c.otherMisses,
		Response:       c.response,
		Tardiness:      c.tardiness,
		Accuracy:       c.accuracy,
	}
	faultedMiss := c.faultedMiss
	sys.Pending(func(j *task.Job) {
		if c.fs != nil && faults.IsDup(j) {
			// Pending duplicates are not censored work — the original
			// job carries the deadline obligation.
			return
		}
		res.Unfinished++
		if j.Deadline < horizon {
			if critical(j.Task) {
				res.CriticalMisses++
			} else {
				res.OtherMisses++
			}
			if c.fs != nil && c.fs.Perturbed(j) {
				faultedMiss++
			}
		}
	})
	if c.fs != nil {
		s := c.fs.Summary()
		res.Faults = &metrics.FaultSummary{
			Jittered:      s.Jittered,
			Dropped:       s.Dropped,
			Duplicated:    s.Duplicated,
			Delayed:       s.Delayed,
			DupDelivered:  c.dupDelivered,
			FaultedMisses: faultedMiss,
		}
	}
	return res
}
