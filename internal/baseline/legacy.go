// BS|Legacy: an NoC system without virtualization support. Each
// processor is deemed a VM; I/O requests cross the legacy kernel
// path, then the mesh routers — whose FIFO arbiters are the only
// "scheduling" the system has — and queue at a conventional
// non-preemptive I/O controller.
package baseline

import (
	"sort"

	"ioguard/internal/noc"
	"ioguard/internal/queue"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// Legacy is the BS|Legacy baseline.
type Legacy struct {
	t       *meshTransport
	tasks   task.Set
	path    rtos.PathCost
	devices []string
	pending *queue.PQ[*task.Job] // keyed by injection slot
}

var _ system.System = (*Legacy)(nil)

// devicesOf returns the sorted device names used by a workload.
func devicesOf(ts task.Set) []string {
	seen := map[string]bool{}
	for _, t := range ts {
		seen[t.Device] = true
	}
	out := make([]string, 0, len(seen))
	for d := range seen {
		out = append(out, d)
	}
	sort.Strings(out)
	return out
}

// NewLegacy builds the legacy baseline for the workload.
func NewLegacy(vms int, ts task.Set, col *system.Collector) (*Legacy, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	path := rtos.Costs(rtos.Legacy)
	devices := devicesOf(ts)
	t, err := newMeshTransport(vms, devices, col, path.Response)
	if err != nil {
		return nil, err
	}
	return &Legacy{t: t, tasks: ts, path: path, devices: devices, pending: queue.NewPQ[*task.Job](0)}, nil
}

// Name returns "BS|Legacy".
func (l *Legacy) Name() string { return rtos.Legacy.String() }

// Arch returns rtos.Legacy.
func (l *Legacy) Arch() rtos.Arch { return rtos.Legacy }

// Residual returns the full workload: the legacy system has no
// P-channel, every task is driven externally.
func (l *Legacy) Residual() task.Set { return l.tasks }

// Submit runs the kernel I/O path and schedules the request packet's
// injection into the mesh.
func (l *Legacy) Submit(now slot.Time, j *task.Job) {
	l.pending.Push(now+l.path.Request, j)
}

// injectDue injects every pending request whose kernel path has
// completed — the guest-side half of Step, shared with the processor
// region shard (guestPipe).
func (l *Legacy) injectDue(now slot.Time) {
	for {
		_, at, j, ok := l.pending.Min()
		if !ok || at > now {
			break
		}
		l.pending.PopMin()
		l.t.sendRequest(now, j)
	}
}

// pipeNextWork implements guestPipe: the earliest scheduled request
// injection, or slot.Never.
func (l *Legacy) pipeNextWork(now slot.Time) slot.Time {
	if _, at, _, ok := l.pending.Min(); ok {
		return at
	}
	return slot.Never
}

// nextEmit implements guestPipe: the head of the kernel-path queue is
// the earliest scheduled injection; a job not yet submitted arrives
// at slot ≥ pub and pays the request path, so pub+Request bounds it.
func (l *Legacy) nextEmit(pub slot.Time) slot.Time {
	e := pub + l.path.Request
	if _, at, _, ok := l.pending.Min(); ok && at < e {
		e = at
	}
	return e
}

// Step injects due requests and advances the mesh and controllers.
func (l *Legacy) Step(now slot.Time) {
	l.injectDue(now)
	l.t.step(now)
}

// NextWork implements the sim.Quiescer protocol: the transport when
// busy, otherwise the earliest scheduled request injection.
func (l *Legacy) NextWork(now slot.Time) slot.Time {
	next := l.t.nextWork(now)
	if next <= now {
		return now
	}
	if _, at, _, ok := l.pending.Min(); ok {
		if at <= now {
			return now
		}
		if at < next {
			next = at
		}
	}
	return next
}

// SkipTo implements sim.Skipper: a skipped span only ever covers mesh
// link countdowns (NextWork pins every other kind of progress), which
// the transport replays in bulk.
func (l *Legacy) SkipTo(from, to slot.Time) { l.t.skipTo(from, to) }

// Devices returns the workload's device names; as a single shard the
// legacy system consumes every released job.
func (l *Legacy) Devices() []string { return l.devices }

// Shards implements system.ShardedSystem with two region shards: the
// processor band (kernel path + request injection + response ejection)
// and the device row (stations), coupled only through the mesh's
// boundary-flit horizons. Falls back to the monolithic single shard
// if the region split is unavailable.
func (l *Legacy) Shards() []system.Shard {
	if sh := l.t.regionShards(l, l.devices, l.Submit); sh != nil {
		return sh
	}
	return []system.Shard{l}
}

// Pending visits jobs still inside the system.
func (l *Legacy) Pending(visit func(j *task.Job)) {
	l.pending.Each(func(_ queue.Handle, _ slot.Time, j *task.Job) { visit(j) })
	l.t.pendingJobs(visit)
}

// Dropped returns jobs lost in transport.
func (l *Legacy) Dropped() int64 { return l.t.dropped.Load() }

// MeshStats exposes the NoC delivery statistics for inspection:
// monolithic mesh counters merged with the region shards' (which are
// individually atomic, so a concurrent snapshot is safe mid-run).
func (l *Legacy) MeshStats() noc.Stats { return l.t.meshStats() }
