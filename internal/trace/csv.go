// CSV export of execution traces, for offline analysis of schedules
// in spreadsheet/plotting tools.
package trace

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
)

// WriteCSV streams the recorded events as CSV with the header
// slot,event,task,vm,job,deadline.
func (r *Recorder) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"slot", "event", "task", "vm", "job", "deadline"}); err != nil {
		return err
	}
	for _, e := range r.events {
		rec := []string{
			strconv.FormatInt(int64(e.At), 10),
			e.Kind.String(),
			e.Job.Task.Name,
			strconv.Itoa(e.Job.Task.VM),
			strconv.Itoa(e.Job.Seq),
			strconv.FormatInt(int64(e.Job.Deadline), 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flushing csv: %w", err)
	}
	return nil
}
