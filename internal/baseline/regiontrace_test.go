package baseline

import (
	"testing"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

// delivRec is one packet delivery as seen by the transport, the
// finest-grained observable the region split must reproduce exactly:
// a single swapped or shifted delivery changes station FIFO order and
// cascades into divergent completions.
type delivRec struct {
	kind     packet.Kind
	task     uint16
	seq      uint32
	injected slot.Time
	now      slot.Time
}

func traceDeliveries(t *testing.T, build system.Builder, tr system.Trial) []delivRec {
	t.Helper()
	var out []delivRec
	debugDeliver = func(kind packet.Kind, task uint16, seq uint32, injected, now slot.Time) {
		out = append(out, delivRec{kind, task, seq, injected, now})
	}
	defer func() { debugDeliver = nil }()
	if _, err := system.Run(build, tr); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestRegionDeliveryTraceEquivalence pins the region-sharded transport
// to the dense mesh at per-delivery granularity for both mesh-coupled
// baselines: every packet must arrive at the same slot, in the same
// order, whether the 5×5 mesh runs monolithically or as two
// boundary-horizon regions. This is the test that caught both protocol
// bugs the split can make: a region fast-forwarding past a response
// that feeds back across the cut (loopback horizon), and a station
// response overtaking a same-slot router hop in a shared FIFO
// (staged injection).
func TestRegionDeliveryTraceEquivalence(t *testing.T) {
	ts, err := workload.Generate(workload.Config{VMs: 3, TargetUtil: 0.8, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	builders := map[string]system.Builder{
		"legacy": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return NewLegacy(tr.VMs, tr.Tasks, col)
		},
		"rtxen": func(tr system.Trial, col *system.Collector) (system.System, error) {
			return NewRTXen(tr.VMs, tr.Tasks, col, 0)
		},
	}
	for name, build := range builders {
		t.Run(name, func(t *testing.T) {
			tr := system.Trial{VMs: 3, Tasks: ts, Horizon: ts.Hyperperiod() * 2, Seed: 42}
			tr.Dense = true
			dense := traceDeliveries(t, build, tr)
			tr.Dense = false
			tr.ShardWorkers = 1
			shard := traceDeliveries(t, build, tr)
			if len(dense) != len(shard) {
				t.Fatalf("delivery count: dense=%d shard=%d", len(dense), len(shard))
			}
			if len(dense) == 0 {
				t.Fatal("workload produced no deliveries")
			}
			diffs := 0
			for i := range dense {
				if dense[i] != shard[i] {
					t.Errorf("delivery %d: dense %+v shard %+v", i, dense[i], shard[i])
					if diffs++; diffs > 8 {
						t.Fatal("too many divergent deliveries")
					}
				}
			}
		})
	}
}
