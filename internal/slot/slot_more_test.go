package slot

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestBuildUtilizationMatchesTaskSet: a successful Build consumes
// exactly ΣC/T of the table.
func TestBuildUtilizationMatchesTaskSet(t *testing.T) {
	reqs := []Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 8},
		{ID: 1, Period: 16, WCET: 4, Deadline: 16},
		{ID: 2, Period: 4, WCET: 1, Deadline: 4},
	}
	tab, _, err := Build(reqs)
	if err != nil {
		t.Fatal(err)
	}
	want := 2.0/8 + 4.0/16 + 1.0/4
	if got := tab.Utilization(); math.Abs(got-want) > 1e-9 {
		t.Errorf("table utilization %v, want %v", got, want)
	}
}

// TestBuildEachTaskGetsExactBudget: every task owns exactly
// WCET × (H/Period) slots of σ*.
func TestBuildEachTaskGetsExactBudget(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		reqs := []Requirement{
			{ID: 0, Period: 8, WCET: Time(1 + rng.Intn(3)), Deadline: 8},
			{ID: 1, Period: 16, WCET: Time(1 + rng.Intn(4)), Deadline: 16},
		}
		tab, _, err := Build(reqs)
		if err != nil {
			return true // overload draws are fine
		}
		h := Time(tab.Len())
		for _, r := range reqs {
			owned := Time(0)
			for i := Time(0); i < h; i++ {
				if tab.Owner(i) == r.ID {
					owned++
				}
			}
			if owned != r.WCET*(h/r.Period) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// TestBuildDeterministic: identical requirements always yield the
// identical table (the offline builder is part of the reproducible
// toolchain).
func TestBuildDeterministic(t *testing.T) {
	reqs := []Requirement{
		{ID: 0, Period: 8, WCET: 2, Deadline: 6, Offset: 1},
		{ID: 1, Period: 16, WCET: 5, Deadline: 16},
	}
	a, _, err := Build(reqs)
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Build(reqs)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("non-deterministic build:\n%s\n%s", a, b)
	}
}

func TestFreeInFullPeriods(t *testing.T) {
	tab := NewTable(4)
	tab.Assign(0, 1)
	// length exactly k*H from any start must be k*F.
	for start := Time(0); start < 4; start++ {
		for k := Time(1); k <= 3; k++ {
			if got := tab.FreeIn(start, 4*k); got != 3*k {
				t.Errorf("FreeIn(%d,%d) = %d, want %d", start, 4*k, got, 3*k)
			}
		}
	}
}

func TestNextFreeFromNegative(t *testing.T) {
	tab := NewTable(4)
	tab.Assign(0, 1)
	got := tab.NextFree(-3) // slot -3 ≡ 1 (mod 4), free
	if got != -3 {
		t.Errorf("NextFree(-3) = %d, want -3", got)
	}
}

func TestTableUtilizationEmpty(t *testing.T) {
	if NewTable(0).Utilization() != 0 {
		t.Error("empty table utilization should be 0")
	}
}

// TestBuildRejectsHugeHyperperiod guards the LCM explosion path.
func TestBuildRejectsHugeHyperperiod(t *testing.T) {
	reqs := []Requirement{
		{ID: 0, Period: 1 << 21, WCET: 1, Deadline: 1 << 21},
		{ID: 1, Period: (1 << 21) - 1, WCET: 1, Deadline: (1 << 21) - 1}, // coprime
	}
	if _, _, err := Build(reqs); err == nil {
		t.Error("astronomical hyper-period accepted")
	}
}
