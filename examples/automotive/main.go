// Automotive case study (one point of Fig. 7): generate the paper's
// 20-safety + 20-function automotive workload plus synthetic load at
// a target utilization, run all five systems on identical inputs, and
// compare success and throughput.
//
//	go run ./examples/automotive [-util 0.8] [-vms 8]
package main

import (
	"flag"
	"fmt"
	"log"

	"ioguard"
	"ioguard/internal/experiments"
	"ioguard/internal/system"
	"ioguard/internal/workload"
)

func main() {
	util := flag.Float64("util", 0.8, "target device utilization")
	vms := flag.Int("vms", 8, "number of VMs")
	trials := flag.Int("trials", 5, "trials per system")
	flag.Parse()

	fmt.Printf("automotive case study: %d VMs, target utilization %.0f%%\n", *vms, *util*100)
	agg := map[string]*ioguard.Aggregate{}
	for _, name := range experiments.SystemNames() {
		agg[name] = &ioguard.Aggregate{}
	}
	builders := experiments.Builders()
	for trial := 0; trial < *trials; trial++ {
		seed := int64(trial)*7919 + 17
		ts, err := workload.Generate(workload.Config{
			VMs:        *vms,
			TargetUtil: *util,
			Seed:       seed,
		})
		if err != nil {
			log.Fatal(err)
		}
		for _, name := range experiments.SystemNames() {
			res, err := system.Run(builders[name], system.Trial{
				VMs:     *vms,
				Tasks:   ts,
				Horizon: ts.Hyperperiod() * 4,
				Seed:    seed,
			})
			if err != nil {
				log.Fatal(err)
			}
			agg[name].AddTrial(res)
		}
	}
	fmt.Printf("%-14s %10s %16s %14s\n", "system", "success", "throughput MB/s", "misses/trial")
	for _, name := range experiments.SystemNames() {
		a := agg[name]
		fmt.Printf("%-14s %9.1f%% %16.3f %14.1f\n",
			name, 100*a.SuccessRatio(), a.Throughput.Mean(), a.Misses.Mean())
	}
}
