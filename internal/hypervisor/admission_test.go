package hypervisor

import (
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func admissionManager(t *testing.T) *Manager {
	t.Helper()
	m, err := New(Config{
		VMs:  2,
		Mode: ServerEDF,
		Servers: []task.Server{
			{VM: 0, Period: 8, Budget: 3},
			{VM: 1, Period: 8, Budget: 3},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.EnableAdmission(); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestEnableAdmissionRequiresServerEDF(t *testing.T) {
	m, _ := New(Config{VMs: 1, Mode: DirectEDF})
	if err := m.EnableAdmission(); err == nil {
		t.Error("DirectEDF admission accepted")
	}
	m2, _ := New(Config{VMs: 1, Mode: ServerEDF})
	if err := m2.EnableAdmission(); err == nil {
		t.Error("admission without servers accepted")
	}
	if m2.AdmissionEnabled() {
		t.Error("admission should be off after failed enable")
	}
}

func TestRegisterTaskAcceptsFeasible(t *testing.T) {
	m := admissionManager(t)
	spec := task.Sporadic{ID: 0, VM: 0, Period: 64, WCET: 4, Deadline: 64}
	if err := m.RegisterTask(spec); err != nil {
		t.Fatal(err)
	}
	// Jobs of the registered task flow normally.
	j := task.NewJob(&spec, 0, 0)
	m.Submit(0, j)
	for now := slot.Time(0); now < 64; now++ {
		m.Step(now)
	}
	if m.Stats().Completed != 1 {
		t.Errorf("registered task's job did not complete: %+v", m.Stats())
	}
	if m.RejectedAtAdmission() != 0 {
		t.Error("no rejections expected")
	}
}

func TestRegisterTaskRejectsOverload(t *testing.T) {
	m := admissionManager(t)
	ok := task.Sporadic{ID: 0, VM: 0, Period: 32, WCET: 8, Deadline: 32} // 2/3 of the Θ/Π=0.375 reservation
	if err := m.RegisterTask(ok); err != nil {
		t.Fatal(err)
	}
	// A second task pushing the VM past its reservation.
	over := task.Sporadic{ID: 1, VM: 0, Period: 32, WCET: 10, Deadline: 32}
	if err := m.RegisterTask(over); err == nil {
		t.Error("overloading registration accepted")
	}
	// The other VM is unaffected.
	other := task.Sporadic{ID: 2, VM: 1, Period: 64, WCET: 8, Deadline: 64}
	if err := m.RegisterTask(other); err != nil {
		t.Errorf("independent VM registration failed: %v", err)
	}
}

func TestRegisterTaskValidation(t *testing.T) {
	m := admissionManager(t)
	if err := m.RegisterTask(task.Sporadic{ID: 0, VM: 0, Period: 0, WCET: 1, Deadline: 1}); err == nil {
		t.Error("invalid spec accepted")
	}
	if err := m.RegisterTask(task.Sporadic{ID: 0, VM: 9, Period: 32, WCET: 1, Deadline: 32}); err == nil {
		t.Error("out-of-range vm accepted")
	}
	spec := task.Sporadic{ID: 0, VM: 0, Period: 64, WCET: 1, Deadline: 64}
	if err := m.RegisterTask(spec); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterTask(spec); err == nil {
		t.Error("duplicate registration accepted")
	}
	plain, _ := New(Config{VMs: 1, Mode: DirectEDF})
	if err := plain.RegisterTask(spec); err == nil {
		t.Error("registration without admission control accepted")
	}
	if err := plain.UnregisterTask(0, 0); err == nil {
		t.Error("unregister without admission control accepted")
	}
}

func TestUnregisterFreesBandwidth(t *testing.T) {
	m := admissionManager(t)
	big := task.Sporadic{ID: 0, VM: 0, Period: 64, WCET: 12, Deadline: 64}
	if err := m.RegisterTask(big); err != nil {
		t.Fatal(err)
	}
	next := task.Sporadic{ID: 1, VM: 0, Period: 64, WCET: 12, Deadline: 64}
	if err := m.RegisterTask(next); err == nil {
		t.Fatal("second heavy task should not fit")
	}
	if err := m.UnregisterTask(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterTask(next); err != nil {
		t.Errorf("after unregister the bandwidth should be free: %v", err)
	}
	if err := m.UnregisterTask(0, 99); err == nil {
		t.Error("unregistering unknown task accepted")
	}
}

func TestUnregisteredJobsDropped(t *testing.T) {
	m := admissionManager(t)
	rogue := task.Sporadic{ID: 7, VM: 0, Period: 16, WCET: 2, Deadline: 16}
	m.Submit(0, task.NewJob(&rogue, 0, 0))
	for now := slot.Time(0); now < 32; now++ {
		m.Step(now)
	}
	if m.Stats().Completed != 0 {
		t.Error("unregistered job executed")
	}
	if m.RejectedAtAdmission() != 1 || m.Stats().Dropped != 1 {
		t.Errorf("rejected=%d dropped=%d, want 1/1", m.RejectedAtAdmission(), m.Stats().Dropped)
	}
}

func TestAdmissionGuaranteesHold(t *testing.T) {
	// Register tasks up to the acceptance boundary and run them at
	// maximal rate: nothing registered may miss.
	m := admissionManager(t)
	specs := []task.Sporadic{
		{ID: 0, VM: 0, Period: 32, WCET: 4, Deadline: 32},
		{ID: 1, VM: 0, Period: 64, WCET: 8, Deadline: 64},
		{ID: 2, VM: 1, Period: 48, WCET: 10, Deadline: 48},
	}
	var accepted []*task.Sporadic
	for i := range specs {
		if err := m.RegisterTask(specs[i]); err == nil {
			accepted = append(accepted, &specs[i])
		}
	}
	if len(accepted) == 0 {
		t.Fatal("nothing admitted")
	}
	misses := 0
	m.OnComplete = func(j *task.Job, at slot.Time) {
		if at > j.Deadline {
			misses++
		}
	}
	next := make([]slot.Time, len(accepted))
	seq := make([]int, len(accepted))
	for now := slot.Time(0); now < 2048; now++ {
		for i, spec := range accepted {
			if next[i] <= now {
				m.Submit(now, task.NewJob(spec, seq[i], now))
				seq[i]++
				next[i] = now + spec.Period
			}
		}
		m.Step(now)
	}
	if misses != 0 {
		t.Errorf("admitted tasks missed %d deadlines", misses)
	}
}
