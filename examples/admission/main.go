// Admission: the hypervisor's online admission control (an extension
// of the paper's design). VMs register run-time tasks with the
// virtualization manager; each registration runs the Theorem 3/4 test
// against the VM's server reservation, so a task that would break the
// VM's existing guarantees is refused before it ever queues a job —
// and jobs from unregistered (rogue) tasks are dropped at the door.
//
//	go run ./examples/admission
package main

import (
	"fmt"
	"log"

	"ioguard/internal/hypervisor"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

func main() {
	mgr, err := hypervisor.New(hypervisor.Config{
		VMs:  2,
		Mode: hypervisor.ServerEDF,
		Servers: []task.Server{
			{VM: 0, Period: 8, Budget: 3}, // VM0 reserves 37.5 % of the device
			{VM: 1, Period: 8, Budget: 3},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	if err := mgr.EnableAdmission(); err != nil {
		log.Fatal(err)
	}

	requests := []task.Sporadic{
		{ID: 0, Name: "lidar-sweep", VM: 0, Period: 64, WCET: 12, Deadline: 64},
		{ID: 1, Name: "camera-meta", VM: 0, Period: 128, WCET: 10, Deadline: 128},
		{ID: 2, Name: "greedy-log", VM: 0, Period: 32, WCET: 10, Deadline: 32}, // would overload VM0
		{ID: 3, Name: "body-ctrl", VM: 1, Period: 64, WCET: 16, Deadline: 64},
	}
	var admitted []*task.Sporadic
	for i := range requests {
		err := mgr.RegisterTask(requests[i])
		verdict := "ADMITTED"
		if err != nil {
			verdict = fmt.Sprintf("REJECTED (%v)", err)
		} else {
			admitted = append(admitted, &requests[i])
		}
		fmt.Printf("register %-12s on vm%d (U=%.3f): %s\n",
			requests[i].Name, requests[i].VM, requests[i].Utilization(), verdict)
	}

	// Run everything that was admitted at full rate, plus a rogue
	// task that never registered.
	rogue := task.Sporadic{ID: 9, Name: "rogue", VM: 0, Period: 16, WCET: 4, Deadline: 16}
	misses := 0
	mgr.OnComplete = func(j *task.Job, at slot.Time) {
		if at > j.Deadline {
			misses++
		}
	}
	next := make([]slot.Time, len(admitted))
	seq := make([]int, len(admitted))
	rogueSeq := 0
	for now := slot.Time(0); now < 4096; now++ {
		for i, spec := range admitted {
			if next[i] <= now {
				mgr.Submit(now, task.NewJob(spec, seq[i], now))
				seq[i]++
				next[i] = now + spec.Period
			}
		}
		if now%16 == 0 {
			mgr.Submit(now, task.NewJob(&rogue, rogueSeq, now))
			rogueSeq++
		}
		mgr.Step(now)
	}
	fmt.Printf("\nafter 4096 slots: %d completions, %d deadline misses among admitted tasks\n",
		mgr.Stats().Completed, misses)
	fmt.Printf("rogue jobs submitted: %d, rejected at the door: %d\n",
		rogueSeq, mgr.RejectedAtAdmission())
}
