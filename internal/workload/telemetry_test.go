package workload

import (
	"reflect"
	"testing"

	"ioguard/internal/slot"
)

// Every catalogue period must come from the harmonic telemetry ladder
// so hyper-periods stay bounded at 64 ms.
func TestTelemetryPeriodsHarmonic(t *testing.T) {
	ok := map[slot.Time]bool{}
	for _, p := range telemetryLadder {
		ok[p] = true
	}
	for _, e := range TelemetryEntries() {
		if !ok[e.Period] {
			t.Errorf("%s: period %d not in telemetry ladder %v", e.Name, e.Period, telemetryLadder)
		}
	}
}

// The telemetry family must be genuinely sparse: every device below 2%
// utilization, and all five low-speed platform devices covered.
func TestTelemetrySparse(t *testing.T) {
	ts, err := GenerateTelemetry(TelemetryConfig{VMs: 4, Sensors: 1})
	if err != nil {
		t.Fatal(err)
	}
	utils := DeviceUtilization(ts)
	want := []string{"can", "flexray", "i2c", "spi", "uart"}
	for _, dev := range want {
		u, ok := utils[dev]
		if !ok {
			t.Fatalf("device %s missing from telemetry set", dev)
		}
		if u >= 0.02 {
			t.Errorf("device %s utilization %.4f not sparse (want < 0.02)", dev, u)
		}
	}
	for _, tk := range ts {
		if tk.Jitter <= 0 {
			t.Errorf("task %s: telemetry reports should carry release jitter", tk.Name)
		}
	}
}

// A hot device must reach (approximately) its target utilization while
// the remaining devices stay sparse — the skew cell of the decoupling
// benchmarks.
func TestTelemetryHotDevice(t *testing.T) {
	ts, err := GenerateTelemetry(TelemetryConfig{VMs: 4, HotDevice: "can", HotUtil: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	utils := DeviceUtilization(ts)
	if u := utils["can"]; u < 0.55 || u > 0.70 {
		t.Errorf("hot device utilization %.3f, want ≈0.60", u)
	}
	for dev, u := range utils {
		if dev == "can" {
			continue
		}
		if u >= 0.02 {
			t.Errorf("cold device %s utilization %.4f not sparse", dev, u)
		}
	}
}

// The generator must be deterministic in its config and pass
// task.Set validation at every scale it is used at.
func TestTelemetryDeterministicAndValid(t *testing.T) {
	cfgs := []TelemetryConfig{
		{VMs: 1},
		{VMs: 3, Sensors: 4, Seed: 7},
		{VMs: 8, Sensors: 2, Jitter: 25, HotDevice: "spi", HotUtil: 0.8, Seed: 11},
		{VMs: 2, Jitter: -1, HotDevice: "uart", HotUtil: 0.3},
	}
	for _, cfg := range cfgs {
		a, err := GenerateTelemetry(cfg)
		if err != nil {
			t.Fatalf("%+v: %v", cfg, err)
		}
		b, err := GenerateTelemetry(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%+v: generator not deterministic", cfg)
		}
		if err := a.Validate(); err != nil {
			t.Errorf("%+v: %v", cfg, err)
		}
		if cfg.Jitter < 0 {
			for _, tk := range a {
				if tk.Jitter != 0 {
					t.Errorf("%+v: task %s has jitter %d with jitter disabled", cfg, tk.Name, tk.Jitter)
				}
			}
		}
	}
	if _, err := GenerateTelemetry(TelemetryConfig{VMs: 0}); err == nil {
		t.Error("want error for zero VMs")
	}
	if _, err := GenerateTelemetry(TelemetryConfig{VMs: 1, HotUtil: 1.5}); err == nil {
		t.Error("want error for out-of-range hot utilization")
	}
}
