package iodev

import (
	"testing"
	"testing/quick"

	"ioguard/internal/slot"
)

func TestStandardModelsValid(t *testing.T) {
	for name, m := range Catalog() {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
		if m.Name != name {
			t.Errorf("catalog key %q ≠ model name %q", name, m.Name)
		}
	}
}

func TestValidateRejectsBadModels(t *testing.T) {
	bad := []Model{
		{Name: "", BitsPerSec: 1},
		{Name: "x", BitsPerSec: 0},
		{Name: "x", BitsPerSec: 1, OverheadBits: -1},
		{Name: "x", BitsPerSec: 1, SetupSlots: -1},
	}
	for i, m := range bad {
		if m.Validate() == nil {
			t.Errorf("case %d accepted: %+v", i, m)
		}
	}
}

func TestServiceSlotsEthernet(t *testing.T) {
	// 1500 B at 1 Gbps = 12 µs payload + framing; slots are 1 µs.
	s := Ethernet.ServiceSlots(1500)
	if s < 12 || s > 16 {
		t.Errorf("Ethernet 1500B service = %d slots, want ≈12-16", s)
	}
}

func TestServiceSlotsUARTSlow(t *testing.T) {
	// UART is slow: 100 bytes at 115200 bps ≈ 7 ms ≈ 7000 slots.
	s := UART.ServiceSlots(100)
	if s < 6000 || s > 8000 {
		t.Errorf("UART 100B service = %d slots, want ≈7000", s)
	}
}

func TestServiceSlotsMinimumOne(t *testing.T) {
	m := Model{Name: "fast", BitsPerSec: 1e12}
	if got := m.ServiceSlots(0); got != 1 {
		t.Errorf("zero-byte op = %d slots, want 1", got)
	}
	if got := m.ServiceSlots(-5); got != 1 {
		t.Errorf("negative bytes treated as 0: got %d", got)
	}
}

func TestServiceSlotsMonotonic(t *testing.T) {
	f := func(a, b uint16) bool {
		x, y := int(a), int(b)
		if x > y {
			x, y = y, x
		}
		return FlexRay.ServiceSlots(x) <= FlexRay.ServiceSlots(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestThroughputBelowWire(t *testing.T) {
	// Effective throughput must not exceed the wire rate.
	for _, m := range Catalog() {
		for _, n := range []int{16, 256, 1500} {
			tp := m.ThroughputBytesPerSec(n)
			if tp > m.BitsPerSec/8 {
				t.Errorf("%s: throughput %.0f B/s exceeds wire %.0f B/s", m.Name, tp, m.BitsPerSec/8)
			}
			if tp <= 0 {
				t.Errorf("%s: non-positive throughput", m.Name)
			}
		}
	}
}

func TestLookup(t *testing.T) {
	m, err := Lookup("spi")
	if err != nil || m.Name != "spi" {
		t.Errorf("Lookup(spi) = %v, %v", m, err)
	}
	if _, err := Lookup("floppy"); err == nil {
		t.Error("unknown device accepted")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 6 {
		t.Fatalf("Names = %v", names)
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Names not sorted: %v", names)
		}
	}
}

func TestDeviceLifecycle(t *testing.T) {
	d := NewDevice(SPI)
	if !d.Idle(0) {
		t.Fatal("new device should be idle")
	}
	done, err := d.Start(10, 64)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 10 {
		t.Errorf("completion %d should be after start", done)
	}
	if d.Idle(done - 1) {
		t.Error("device should be busy before completion")
	}
	if !d.Idle(done) {
		t.Error("device should be idle at completion")
	}
	if _, err := d.Start(done-1, 8); err == nil {
		t.Error("starting a busy device should fail")
	}
	if d.OpsServed() != 1 || d.BytesServed() != 64 {
		t.Errorf("counters = %d ops / %d bytes", d.OpsServed(), d.BytesServed())
	}
	d.Reset()
	if !d.Idle(0) || d.OpsServed() != 0 || d.BytesServed() != 0 {
		t.Error("Reset should clear state")
	}
}

func TestDeviceBusyUntilMatchesService(t *testing.T) {
	d := NewDevice(FlexRay)
	want := slot.Time(5) + FlexRay.ServiceSlots(32)
	got, _ := d.Start(5, 32)
	if got != want || d.BusyUntil() != want {
		t.Errorf("busy until %d, want %d", got, want)
	}
}
