// Sensitivity analysis: how much load headroom a configuration has.
//
// The schedulability tests of Sec. IV give a yes/no answer; system
// designers usually want the margin. CriticalScaling binary-searches
// the largest uniform WCET inflation factor α such that the two-layer
// analysis still accepts the system — the analytical analogue of the
// utilization sweep in Fig. 7 (a configuration's success-ratio cliff
// sits near its critical scaling point).
package analysis

import (
	"errors"
	"fmt"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// ScalingResult reports the critical scaling factor of a system.
type ScalingResult struct {
	// Alpha is the largest tested inflation factor (applied to every
	// task's WCET) that remained schedulable.
	Alpha float64
	// BaselineOK reports whether the unscaled system (α=1) passes; if
	// not, Alpha < 1 describes how much the load must shrink.
	BaselineOK bool
}

// scaleSet returns ts with every WCET inflated by α (rounded up, at
// least 1 slot), clamping nothing: tasks whose scaled WCET exceeds
// their deadline simply make the set unschedulable, which is the
// signal the search uses.
func scaleSet(ts task.Set, alpha float64) task.Set {
	out := make(task.Set, len(ts))
	for i, t := range ts {
		c := slot.Time(float64(t.WCET)*alpha + 0.999999)
		if c < 1 {
			c = 1
		}
		t.WCET = c
		out[i] = t
	}
	return out
}

// feasible reports whether the scaled system passes the full two-layer
// test, re-synthesizing minimal servers at each probe (the designer
// re-dimensions servers for the heavier load, so fixed servers would
// understate the margin).
func feasible(tab *slot.Table, ts task.Set, pi slot.Time, alpha float64) bool {
	scaled := scaleSet(ts, alpha)
	for _, t := range scaled {
		if t.WCET > t.Deadline {
			return false
		}
	}
	_, res, err := SynthesizeServers(tab, scaled, pi)
	return err == nil && res.Schedulable
}

// CriticalScaling finds, to within tol, the largest WCET inflation
// factor α ∈ [lo, hi] that keeps ts schedulable on tab with minimal
// servers of period pi. tol ≤ 0 defaults to 0.01.
func CriticalScaling(tab *slot.Table, ts task.Set, pi slot.Time, tol float64) (ScalingResult, error) {
	if err := ts.Validate(); err != nil {
		return ScalingResult{}, err
	}
	if len(ts) == 0 {
		return ScalingResult{}, errors.New("analysis: empty task set")
	}
	if pi <= 0 {
		return ScalingResult{}, fmt.Errorf("analysis: non-positive server period %d", pi)
	}
	if tol <= 0 {
		tol = 0.01
	}
	res := ScalingResult{BaselineOK: feasible(tab, ts, pi, 1)}
	lo, hi := 0.0, 1.0
	if res.BaselineOK {
		// Grow the upper bracket until infeasible (or absurdly large).
		lo, hi = 1.0, 2.0
		for feasible(tab, ts, pi, hi) && hi < 64 {
			lo, hi = hi, hi*2
		}
		if hi >= 64 {
			res.Alpha = hi
			return res, nil
		}
	} else if !feasible(tab, ts, pi, lo+tol) {
		// Not schedulable even at (almost) zero load: no margin exists.
		res.Alpha = 0
		return res, nil
	}
	// Invariant: feasible(lo), infeasible(hi).
	for hi-lo > tol {
		mid := (lo + hi) / 2
		if feasible(tab, ts, pi, mid) {
			lo = mid
		} else {
			hi = mid
		}
	}
	res.Alpha = lo
	return res, nil
}
