package slot

import (
	"encoding/json"
	"testing"
	"testing/quick"
)

func TestTableJSONRoundTrip(t *testing.T) {
	tab := NewTable(6)
	tab.Assign(1, 0)
	tab.Assign(4, 3)
	data, err := json.Marshal(tab)
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 6 || got.FreeCount() != 4 {
		t.Fatalf("round trip H=%d F=%d", got.Len(), got.FreeCount())
	}
	if got.Owner(1) != 0 || got.Owner(4) != 3 || !got.IsFree(0) {
		t.Errorf("ownership lost: %s", &got)
	}
}

func TestTableJSONRejectsInvalidIDs(t *testing.T) {
	var tab Table
	if err := json.Unmarshal([]byte(`{"slots":[-2,0]}`), &tab); err == nil {
		t.Error("invalid id accepted")
	}
	if err := json.Unmarshal([]byte(`{"slots":`), &tab); err == nil {
		t.Error("malformed JSON accepted")
	}
}

func TestTableJSONEmptyTable(t *testing.T) {
	data, err := json.Marshal(NewTable(0))
	if err != nil {
		t.Fatal(err)
	}
	var got Table
	if err := json.Unmarshal(data, &got); err != nil {
		t.Fatal(err)
	}
	if got.Len() != 0 || got.FreeCount() != 0 {
		t.Error("empty table round trip broken")
	}
}

func TestTableJSONRoundTripProperty(t *testing.T) {
	f := func(raw []int8) bool {
		tab := NewTable(len(raw))
		for i, r := range raw {
			if r >= 0 {
				if err := tab.Assign(Time(i), TaskID(r)); err != nil {
					return false
				}
			}
		}
		data, err := json.Marshal(tab)
		if err != nil {
			return false
		}
		var got Table
		if err := json.Unmarshal(data, &got); err != nil {
			return false
		}
		if got.Len() != tab.Len() || got.FreeCount() != tab.FreeCount() {
			return false
		}
		for i := 0; i < tab.Len(); i++ {
			if got.Owner(Time(i)) != tab.Owner(Time(i)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
