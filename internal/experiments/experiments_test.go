package experiments

import (
	"fmt"
	"strings"
	"testing"
)

func TestSystemNamesAndBuildersAgree(t *testing.T) {
	builders := Builders()
	for _, n := range AllSystemNames() {
		if _, ok := builders[n]; !ok {
			t.Errorf("system %q has no builder", n)
		}
	}
	if len(builders) != len(AllSystemNames()) {
		t.Errorf("builders = %d, names = %d", len(builders), len(AllSystemNames()))
	}
	// The Fig. 7 column set is a strict prefix relation: every
	// case-study system is buildable, and AllSystemNames adds only
	// BS|PART.
	seen := map[string]bool{}
	for _, n := range AllSystemNames() {
		seen[n] = true
	}
	for _, n := range SystemNames() {
		if !seen[n] {
			t.Errorf("case-study system %q missing from AllSystemNames", n)
		}
	}
}

func TestDefaultUtils(t *testing.T) {
	utils := DefaultUtils()
	if len(utils) != 13 {
		t.Fatalf("grid size = %d, want 13", len(utils))
	}
	if utils[0] != 0.40 || utils[len(utils)-1] != 1.00 {
		t.Errorf("grid = %v", utils)
	}
	for i := 1; i < len(utils); i++ {
		if d := utils[i] - utils[i-1]; d < 0.049 || d > 0.051 {
			t.Errorf("grid step %v at %d", d, i)
		}
	}
}

func TestCaseStudyValidation(t *testing.T) {
	if _, err := CaseStudy(CaseStudyConfig{VMs: 0}); err == nil {
		t.Error("zero VMs accepted")
	}
	if _, err := CaseStudy(CaseStudyConfig{
		VMs: 2, Utils: []float64{0.5}, Trials: 1, HyperPeriods: 1,
		Systems: []string{"nope"},
	}); err == nil {
		t.Error("unknown system accepted")
	}
}

// TestCaseStudySmall runs a reduced sweep end to end and checks the
// headline orderings of Obs. 3.
func TestCaseStudySmall(t *testing.T) {
	points, err := CaseStudy(CaseStudyConfig{
		VMs:          4,
		Utils:        []float64{0.45, 0.95},
		Trials:       2,
		HyperPeriods: 2,
		Seed:         3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2*len(SystemNames()) {
		t.Fatalf("points = %d", len(points))
	}
	get := func(sys string, util float64) float64 {
		for _, p := range points {
			if p.System == sys && p.Util == util {
				return p.Agg.SuccessRatio()
			}
		}
		t.Fatalf("missing point %s/%.2f", sys, util)
		return 0
	}
	// At low utilization everyone succeeds.
	for _, n := range SystemNames() {
		if get(n, 0.45) < 0.99 {
			t.Errorf("%s at 0.45: success %.2f, want 1.0", n, get(n, 0.45))
		}
	}
	// At high utilization I/O-GUARD-70 beats every baseline.
	for _, n := range []string{"BS|Legacy", "BS|RT-XEN", "BS|BV"} {
		if get("I/O-GUARD-70", 0.95) < get(n, 0.95) {
			t.Errorf("I/O-GUARD-70 (%.2f) should not lose to %s (%.2f) at 0.95",
				get("I/O-GUARD-70", 0.95), n, get(n, 0.95))
		}
	}
	out := RenderCaseStudy(points, 4)
	for _, want := range []string{"Fig. 7", "success ratio", "I/O throughput", "I/O-GUARD-70"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q", want)
		}
	}
}

// TestCaseStudyParallelDeterministic pins the deterministic-merge
// guarantee: the rendered Fig. 7 table must be byte-identical for the
// sequential path (workers=1) and a saturated pool, on a fixed seed.
func TestCaseStudyParallelDeterministic(t *testing.T) {
	cfg := CaseStudyConfig{
		VMs:          2,
		Utils:        []float64{0.45, 0.95},
		Trials:       3,
		HyperPeriods: 2,
		Seed:         7,
	}
	cfg.Workers = 1
	seq, err := CaseStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqTable := RenderCaseStudy(seq, cfg.VMs)
	for _, workers := range []int{2, 8} {
		workers := workers
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			t.Parallel()
			c := cfg
			c.Workers = workers
			par, err := CaseStudy(c)
			if err != nil {
				t.Fatal(err)
			}
			if table := RenderCaseStudy(par, c.VMs); table != seqTable {
				t.Errorf("workers=%d table diverged from sequential:\n--- workers=1\n%s--- workers=%d\n%s",
					workers, seqTable, workers, table)
			}
		})
	}
}

// TestTrialSeedDerivation pins the rounding fix: every grid point
// contributes a distinct, truncation-proof seed component.
func TestTrialSeedDerivation(t *testing.T) {
	// 0.55 is not exactly representable; util*1000 truncation made the
	// component grid-step dependent. Round(util*100) is exact for the
	// 5 % grid.
	if got := trialSeed(0, 0, 0.55); got != 55 {
		t.Errorf("trialSeed(0,0,0.55) = %d, want 55", got)
	}
	seen := map[int64]float64{}
	for _, u := range DefaultUtils() {
		s := trialSeed(1, 0, u)
		if prev, dup := seen[s]; dup {
			t.Errorf("seed collision between U=%.2f and U=%.2f", prev, u)
		}
		seen[s] = u
		// A perturbation below float64 grid noise must not move the seed.
		if s != trialSeed(1, 0, u+1e-12) || s != trialSeed(1, 0, u-1e-12) {
			t.Errorf("seed at U=%.2f is not truncation-stable", u)
		}
	}
}

// TestPreloadSeedPerFraction pins the PreloadSweep fix: different
// fractions must draw different workload realizations.
func TestPreloadSeedPerFraction(t *testing.T) {
	fracs := []float64{0, 0.2, 0.4, 0.6, 0.8, 1.0}
	seen := map[int64]float64{}
	for _, f := range fracs {
		s := preloadSeed(4, 0, f)
		if prev, dup := seen[s]; dup {
			t.Errorf("fraction %.1f reuses the workload realization of %.1f", f, prev)
		}
		seen[s] = f
	}
}

func TestRenderTable1(t *testing.T) {
	out, err := RenderTable1()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"MicroBlaze", "Proposed", "LUTs", "BlueIO"} {
		if !strings.Contains(out, want) {
			t.Errorf("table missing %q", want)
		}
	}
}

func TestFig8(t *testing.T) {
	points, err := Fig8(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 4 {
		t.Fatalf("points = %d", len(points))
	}
	for _, p := range points {
		if p.GuardArea <= p.LegacyArea {
			t.Errorf("η=%d: guard area should exceed legacy", p.Eta)
		}
		if p.GuardFmax <= p.LegacyFmax {
			t.Errorf("η=%d: guard fmax should exceed legacy", p.Eta)
		}
	}
	if _, err := Fig8(-1); err == nil {
		t.Error("negative eta accepted")
	}
	out := RenderFig8(points)
	if !strings.Contains(out, "Fig. 8") || !strings.Contains(out, "fmax") {
		t.Errorf("render = %q", out)
	}
}

func TestSchedulerAblation(t *testing.T) {
	points, err := SchedulerAblation(2, 0.6, 1, 5, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("ablation points = %d", len(points))
	}
	for _, p := range points {
		if p.Agg.Trials != 1 {
			t.Errorf("%s: trials = %d", p.Config, p.Agg.Trials)
		}
	}
}

func TestResponseProfile(t *testing.T) {
	profiles, err := ResponseProfile(2, 0.5, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(profiles) != len(AllSystemNames()) {
		t.Fatalf("profiles = %d systems", len(profiles))
	}
	for name, h := range profiles {
		if h.N() == 0 {
			t.Errorf("%s: empty histogram", name)
		}
	}
	out := RenderResponseProfile(profiles)
	for _, n := range SystemNames() {
		if !strings.Contains(out, n) {
			t.Errorf("render missing %s", n)
		}
	}
}

func TestPreloadSweep(t *testing.T) {
	points, err := PreloadSweep(2, 0.5, []float64{0, 1}, 1, 4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 2 {
		t.Fatalf("points = %d", len(points))
	}
	out := RenderPreloadSweep(points, 2, 0.5)
	if !strings.Contains(out, "Pre-load fraction sweep") {
		t.Errorf("render = %q", out)
	}
}
