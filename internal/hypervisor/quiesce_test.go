package hypervisor

import (
	"reflect"
	"testing"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// mixedManager builds a manager with a P-channel task (period 8, 2
// slots) plus one submitted R-channel job, so both channels and their
// idle accounting are exercised.
func mixedManager(t *testing.T) *Manager {
	t.Helper()
	tab, _, err := slot.Build([]slot.Requirement{{ID: 0, Period: 8, WCET: 2, Deadline: 8}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	spec := &task.Sporadic{ID: 100, Name: "sensor", VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.Preload(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	return m
}

// TestManagerSkipStatsMatchDense: a manager driven through
// NextWork/SkipTo must end with exactly the Stats — including the
// per-slot idle counters — and the same completion trace as one
// stepped densely.
func TestManagerSkipStatsMatchDense(t *testing.T) {
	const horizon = 256

	dense := mixedManager(t)
	var denseLog completionLog
	dense.OnComplete = denseLog.hook()
	rj := &task.Sporadic{ID: 200, Name: "req", VM: 0, Period: 64, WCET: 3, Deadline: 64}
	for now := slot.Time(0); now < horizon; now++ {
		if now == 40 {
			dense.Submit(now, task.NewJob(rj, 0, now))
		}
		dense.Step(now)
	}

	skip := mixedManager(t)
	var skipLog completionLog
	skip.OnComplete = skipLog.hook()
	// Submit at the same slot; the protocol must step slot 40 anyway
	// (NextWork cannot know about future submissions, but slot 40 falls
	// inside a busy region of the P-channel period-8 task — submit
	// before stepping, as system.Run's release phase does).
	var stepped []slot.Time
	for now := slot.Time(0); now < horizon; {
		if now <= 40 {
			if now == 40 {
				skip.Submit(now, task.NewJob(rj, 0, now))
			}
		}
		skip.Step(now)
		stepped = append(stepped, now)
		now++
		if next := skip.NextWork(now); next > now {
			if next > slot.Time(horizon) {
				next = slot.Time(horizon)
			}
			// Never skip past the pending submission slot.
			if now <= 40 && next > 40 {
				next = 40
			}
			if next > now {
				skip.SkipTo(now, next)
				now = next
			}
		}
	}
	if len(stepped) >= horizon {
		t.Fatalf("protocol stepped every slot (%d); nothing was skipped", len(stepped))
	}

	if !reflect.DeepEqual(dense.Stats(), skip.Stats()) {
		t.Errorf("stats diverge:\ndense: %+v\nskip:  %+v", dense.Stats(), skip.Stats())
	}
	if len(denseLog.jobs) == 0 {
		t.Fatal("dense run completed nothing; test is vacuous")
	}
	if len(denseLog.at) != len(skipLog.at) || !reflect.DeepEqual(denseLog.at, skipLog.at) {
		t.Errorf("completion times diverge: dense %v, skip %v", denseLog.at, skipLog.at)
	}
}

// TestManagerNextWorkDrained: with no pre-loaded tasks and no
// submissions the manager declares itself permanently idle.
func TestManagerNextWorkDrained(t *testing.T) {
	m, err := New(Config{VMs: 2, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.NextWork(0); got != slot.Never {
		t.Errorf("empty manager NextWork = %d, want Never", got)
	}
	rj := &task.Sporadic{ID: 1, Name: "req", VM: 0, Period: 64, WCET: 2, Deadline: 64}
	m.Submit(0, task.NewJob(rj, 0, 0))
	if got := m.NextWork(0); got != 0 {
		t.Errorf("manager with queued job NextWork = %d, want 0", got)
	}
	for now := slot.Time(0); now < 16 && m.NextWork(now) <= now; now++ {
		m.Step(now)
	}
	if got := m.NextWork(16); got != slot.Never {
		t.Errorf("drained manager NextWork = %d, want Never", got)
	}
}

// TestManagerNextWorkPendingPrePinsOwnedSlot: a pending P-channel job
// must wake the manager at its task's next owned table slot — not
// earlier (that would forfeit the skip) and never later (that would
// skip its execution slot).
func TestManagerNextWorkPendingPrePinsOwnedSlot(t *testing.T) {
	// Task 0 owns slots 0,1 of an 8-slot table.
	tab, _, err := slot.Build([]slot.Requirement{{ID: 0, Period: 8, WCET: 2, Deadline: 8}})
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(Config{VMs: 1, Table: tab, Mode: DirectEDF})
	if err != nil {
		t.Fatal(err)
	}
	spec := &task.Sporadic{ID: 100, Name: "sensor", VM: 0, Period: 8, WCET: 2, Deadline: 8}
	if err := m.Preload(spec, 0, 0); err != nil {
		t.Fatal(err)
	}
	// Steps 0,1 execute release 0; at slot 2 the next release (slot 8)
	// is the only upcoming work.
	m.Step(0)
	m.Step(1)
	if got := m.NextWork(2); got != 8 {
		t.Errorf("after completing release 0, NextWork(2) = %d, want 8 (next release)", got)
	}
}
