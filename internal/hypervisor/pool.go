// Pool: the per-VM I/O pool of the R-channel (Sec. III-A).
//
// Each pool buffers the run-time I/O tasks of one VM in a
// random-access priority queue whose extra parameter slots hold the
// jobs' deadlines, and exposes the earliest-deadline operation to the
// global scheduler through a shadow register. Partitioning the pools
// per VM provides inter-VM isolation at the hardware I/O level.
package hypervisor

import (
	"fmt"
	"sync/atomic"

	"ioguard/internal/queue"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// Pool is one VM's I/O pool: priority queue + control logic + shadow
// register + local scheduler.
type Pool struct {
	vm     int
	pq     *queue.PQ[*task.Job]
	shadow queue.Shadow[*task.Job]

	// handles maps the buffered jobs back to their queue handles so
	// the executor can remove a completed job in place.
	handles map[*task.Job]queue.Handle

	// dropped counts jobs rejected because the queue was full. Atomic:
	// Admit runs on a shard goroutine under the parallel executor while
	// Dropped may be read concurrently (counter snapshots, the server's
	// stats endpoint).
	dropped atomic.Int64
}

// NewPool returns an empty pool for the given VM. capacity bounds the
// priority queue (the hardware register file); capacity ≤ 0 means
// unbounded.
func NewPool(vm, capacity int) *Pool {
	return &Pool{
		vm:      vm,
		pq:      queue.NewPQ[*task.Job](capacity),
		handles: make(map[*task.Job]queue.Handle),
	}
}

// VM returns the pool's VM index.
func (p *Pool) VM() int { return p.vm }

// Len returns the number of buffered jobs.
func (p *Pool) Len() int { return p.pq.Len() }

// Dropped returns how many jobs were rejected on a full queue.
func (p *Pool) Dropped() int64 { return p.dropped.Load() }

// Admit buffers a run-time job, keyed by its absolute deadline. It
// reports false (and counts a drop) when the pool is full.
func (p *Pool) Admit(j *task.Job) bool {
	h, err := p.pq.Push(j.Deadline, j)
	if err != nil {
		p.dropped.Add(1)
		return false
	}
	p.handles[j] = h
	return true
}

// Schedule runs the local scheduler (L-Sched): it finds the buffered
// job with the earliest deadline and maps it into the shadow register
// for the global scheduler to consider. An empty pool clears the
// register.
func (p *Pool) Schedule() {
	_, key, j, ok := p.pq.Min()
	if !ok {
		p.shadow.Clear()
		return
	}
	p.shadow.Load(key, j)
}

// Shadow returns the job currently visible to the global scheduler
// (the content of the shadow register) and its deadline.
func (p *Pool) Shadow() (deadline slot.Time, j *task.Job, ok bool) {
	return p.shadow.Peek()
}

// Remove deletes a job from the pool (the executor finished it or the
// system retired it).
func (p *Pool) Remove(j *task.Job) error {
	h, ok := p.handles[j]
	if !ok {
		return fmt.Errorf("hypervisor: job %v not in pool %d", j, p.vm)
	}
	if _, ok := p.pq.Remove(h); !ok {
		return fmt.Errorf("hypervisor: handle for %v stale in pool %d", j, p.vm)
	}
	delete(p.handles, j)
	p.Schedule() // refresh the shadow register
	return nil
}

// Each visits every buffered job.
func (p *Pool) Each(visit func(j *task.Job)) {
	p.pq.Each(func(_ queue.Handle, _ slot.Time, j *task.Job) { visit(j) })
}
