package packet

import (
	"bytes"
	"testing"
)

// FuzzDecode hammers the wire decoder: it must never panic, and any
// buffer it accepts must re-encode to the identical bytes.
func FuzzDecode(f *testing.F) {
	p := New(Header{Src: 1, Dst: 2, VM: 3, Kind: Request, Op: Write, Task: 4, Seq: 5, Deadline: 6}, []byte("payload"))
	seed, _ := p.Encode()
	f.Add(seed)
	f.Add([]byte{})
	f.Add(make([]byte, HeaderBytes))
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := Decode(data)
		if err != nil {
			return
		}
		enc, err := got.Encode()
		if err != nil {
			t.Fatalf("decoded packet failed to re-encode: %v", err)
		}
		if !bytes.Equal(enc, data) {
			t.Fatalf("decode/encode not a fixed point:\n in=%x\nout=%x", data, enc)
		}
	})
}
