package slot

import (
	"strings"
	"testing"
)

// TestCheckInvariantsHealthy: tables produced by the public mutators
// always pass the audit, including after a mode-change cycle and with
// the lazy free-prefix index built.
func TestCheckInvariantsHealthy(t *testing.T) {
	for _, tab := range []*Table{NewTable(0), NewTable(1), NewTable(64)} {
		if err := tab.CheckInvariants(); err != nil {
			t.Errorf("fresh table len=%d: %v", tab.Len(), err)
		}
	}
	tab := NewTable(32)
	if _, err := tab.AllocatePeriodic(Requirement{ID: 0, Period: 16, WCET: 3, Deadline: 16}); err != nil {
		t.Fatal(err)
	}
	if err := tab.CheckInvariants(); err != nil {
		t.Errorf("after allocate: %v", err)
	}
	tab.FreeIn(0, 32) // force the free-prefix index
	if err := tab.CheckInvariants(); err != nil {
		t.Errorf("with index: %v", err)
	}
	tab.Release(0)
	if err := tab.CheckInvariants(); err != nil {
		t.Errorf("after release: %v", err)
	}
}

// TestCheckInvariantsDetectsCorruption fabricates broken run lists
// (white-box: same package) and asserts each violation is named.
func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	cases := []struct {
		name string
		tab  *Table
		want string
	}{
		{"no runs", &Table{h: 8}, "has no runs"},
		{"empty with runs", &Table{h: 0, runs: []run{{0, Free}}}, "empty table holds"},
		{"empty with free", &Table{h: 0, free: 3}, "empty table reports"},
		{"bad first start", &Table{h: 8, runs: []run{{2, Free}}, free: 6}, "first run starts"},
		{"non-increasing", &Table{h: 8, runs: []run{{0, Free}, {4, 1}, {4, Free}}, free: 8}, "spans"},
		{"not maximal", &Table{h: 8, runs: []run{{0, 1}, {4, 1}}}, "not maximal"},
		{"free mismatch", &Table{h: 8, runs: []run{{0, Free}}, free: 5}, "cached free count"},
		{"index size", &Table{h: 8, runs: []run{{0, Free}}, free: 8, freePrefix: []Time{0}}, "free-prefix index"},
		{"index total", &Table{h: 8, runs: []run{{0, Free}}, free: 8, freePrefix: []Time{0, 5}}, "free-prefix total"},
	}
	for _, tc := range cases {
		err := tc.tab.CheckInvariants()
		if err == nil {
			t.Errorf("%s: corruption not detected", tc.name)
			continue
		}
		if !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.want)
		}
	}
}
