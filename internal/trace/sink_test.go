package trace

import (
	"bytes"
	"testing"

	"ioguard/internal/task"
)

// TestCSVSinkMatchesWriteCSV: the online sink and the buffered export
// produce byte-identical output for the same event stream.
func TestCSVSinkMatchesWriteCSV(t *testing.T) {
	tk := &task.Sporadic{ID: 0, Name: "crc", VM: 2, Period: 10, WCET: 2, Deadline: 8}
	var r Recorder
	var online bytes.Buffer
	sink, err := NewCSVSink(&online)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		j := task.NewJob(tk, i, 0)
		r.OnRelease(0, j)
		sink.OnRelease(0, j)
		r.OnExecute(1, j)
		sink.OnExecute(1, j)
		r.OnComplete(j, 4)
		sink.OnComplete(j, 4)
	}
	if err := sink.Flush(); err != nil {
		t.Fatal(err)
	}
	var buffered bytes.Buffer
	if err := r.WriteCSV(&buffered); err != nil {
		t.Fatal(err)
	}
	if online.String() != buffered.String() {
		t.Error("online sink and buffered WriteCSV diverge")
	}
}

func TestCSVSinkStickyError(t *testing.T) {
	tk := &task.Sporadic{ID: 0, Name: "x", VM: 0, Period: 10, WCET: 1, Deadline: 10}
	sink, err := NewCSVSink(&failingWriter{left: 64})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sink.OnExecute(0, task.NewJob(tk, i, 0))
	}
	if err := sink.Flush(); err == nil {
		t.Error("write error swallowed")
	}
}
