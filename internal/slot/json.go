// JSON serialization of the Time Slot Table: σ* is configuration
// state loaded into the P-channel memory banks at initialization, so
// it needs a stable on-disk form for tooling (cmd/ioguard-analyze)
// and for shipping tables between the offline builder and a deployed
// system.
//
// The current wire form is the interval encoding
// {"h":H,"runs":[[start,length,owner],...]} — size proportional to
// the number of ownership runs, not to H. Decoding also accepts the
// legacy dense form {"slots":[...]} (one entry per slot, Free as -1)
// so tables written by earlier versions keep loading. Decoded state is
// never trusted: both paths validate every owner, check that the runs
// tile [0,H) exactly, and recompute the free count.
package slot

import (
	"encoding/json"
	"fmt"
	"math"
)

// MarshalJSON encodes the table in the interval form.
func (t *Table) MarshalJSON() ([]byte, error) {
	runs := make([][3]int64, len(t.runs))
	for i, rn := range t.runs {
		runs[i] = [3]int64{int64(rn.start), int64(t.runEnd(i) - rn.start), int64(rn.owner)}
	}
	return json.Marshal(struct {
		H    Time       `json:"h"`
		Runs [][3]int64 `json:"runs"`
	}{t.h, runs})
}

// UnmarshalJSON decodes either encoding, validating owners and
// interval structure and recomputing the free count.
func (t *Table) UnmarshalJSON(data []byte) error {
	var w struct {
		Slots *[]TaskID  `json:"slots"`
		H     *Time      `json:"h"`
		Runs  [][3]int64 `json:"runs"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Slots != nil {
		return t.fromDense(*w.Slots)
	}
	if w.H == nil {
		// Neither form present ({} or {"slots":null}): the empty table,
		// matching the legacy decoder.
		*t = Table{}
		return nil
	}
	return t.fromRuns(*w.H, w.Runs)
}

// fromDense rebuilds the run list from a legacy per-slot encoding.
func (t *Table) fromDense(slots []TaskID) error {
	free := 0
	var runs []run
	for i, id := range slots {
		switch {
		case id == Free:
			free++
		case id < 0:
			return fmt.Errorf("slot: table entry %d has invalid id %d", i, id)
		}
		if len(runs) == 0 || runs[len(runs)-1].owner != id {
			runs = append(runs, run{Time(i), id})
		}
	}
	*t = Table{h: Time(len(slots)), runs: runs, free: free}
	return nil
}

// fromRuns validates and installs an interval encoding: the runs must
// tile [0,h) exactly (contiguous, positive lengths) with owners that
// are Free or valid task ids. Same-owner neighbours are merged so the
// maximal-runs invariant holds even for non-canonical input.
func (t *Table) fromRuns(h Time, triples [][3]int64) error {
	if h < 0 {
		return fmt.Errorf("slot: negative hyper-period %d", h)
	}
	var runs []run
	free := Time(0)
	pos := Time(0)
	for i, tr := range triples {
		start, length, owner := Time(tr[0]), Time(tr[1]), tr[2]
		if start != pos {
			return fmt.Errorf("slot: run %d starts at %d, want %d (runs must tile [0,H))", i, start, pos)
		}
		if length <= 0 {
			return fmt.Errorf("slot: run %d has non-positive length %d", i, length)
		}
		if length > h-pos {
			return fmt.Errorf("slot: run %d overruns the hyper-period %d", i, h)
		}
		if owner < int64(Free) || owner > math.MaxInt32 {
			return fmt.Errorf("slot: run %d has invalid owner %d", i, owner)
		}
		id := TaskID(owner)
		if id == Free {
			free += length
		}
		if len(runs) == 0 || runs[len(runs)-1].owner != id {
			runs = append(runs, run{start, id})
		}
		pos += length
	}
	if pos != h {
		return fmt.Errorf("slot: runs cover %d of %d slots", pos, h)
	}
	*t = Table{h: h, runs: runs, free: int(free)}
	return nil
}
