// Differential suite for the run-length Table: every operation is
// replayed against the dense per-slot reference (DenseTable) and every
// observable is compared after each step. This is the guard that makes
// the representation swap safe — any divergence in Owner, the free
// index, wrap-around window counting, or mode-change allocation shows
// up as a concrete op trace.
package slot

import (
	"encoding/json"
	"math/rand"
	"testing"
)

// tablePair is one interval table and its dense shadow.
type tablePair struct {
	iv *Table
	dn *DenseTable
}

func newPair(h int) *tablePair {
	return &tablePair{iv: NewTable(h), dn: NewDenseTable(h)}
}

// invariants checks the structural invariants of the run list via the
// public iteration API: runs tile [0,H), are maximal, and the free
// count matches the free runs.
func (p *tablePair) invariants(t testing.TB) {
	t.Helper()
	if err := p.iv.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	h := Time(p.iv.Len())
	var pos, free Time
	prev := TaskID(-2) // impossible owner: no merge check on the first run
	n := 0
	p.iv.Runs(func(r Run) bool {
		n++
		if r.Start != pos {
			t.Fatalf("run %d starts at %d, want %d", n, r.Start, pos)
		}
		if r.Length <= 0 {
			t.Fatalf("run %d has length %d", n, r.Length)
		}
		if prev != -2 && r.Owner == prev {
			t.Fatalf("run %d not maximal: owner %d equals predecessor", n, r.Owner)
		}
		if r.Owner == Free {
			free += r.Length
		}
		prev = r.Owner
		pos += r.Length
		return true
	})
	if pos != h {
		t.Fatalf("runs cover %d of %d slots", pos, h)
	}
	if n != p.iv.RunCount() {
		t.Fatalf("RunCount %d, visited %d", p.iv.RunCount(), n)
	}
	if int(free) != p.iv.FreeCount() {
		t.Fatalf("free count %d, free runs sum %d", p.iv.FreeCount(), free)
	}
}

// compare checks every observable of both representations, including
// queries at negative times and windows wrapping the H boundary.
func (p *tablePair) compare(t testing.TB, rng *rand.Rand) {
	t.Helper()
	p.invariants(t)
	if p.iv.Len() != p.dn.Len() {
		t.Fatalf("Len: %d vs %d", p.iv.Len(), p.dn.Len())
	}
	if p.iv.FreeCount() != p.dn.FreeCount() {
		t.Fatalf("FreeCount: %d vs %d", p.iv.FreeCount(), p.dn.FreeCount())
	}
	if p.iv.Utilization() != p.dn.Utilization() {
		t.Fatalf("Utilization: %v vs %v", p.iv.Utilization(), p.dn.Utilization())
	}
	if gi, gd := p.iv.String(), p.dn.String(); gi != gd {
		t.Fatalf("String:\n interval %s\n dense    %s", gi, gd)
	}
	h := Time(p.iv.Len())
	if h == 0 {
		return
	}
	// Exhaustive point queries across three repetitions and negatives.
	for at := -h; at < 2*h; at++ {
		if gi, gd := p.iv.Owner(at), p.dn.Owner(at); gi != gd {
			t.Fatalf("Owner(%d): %d vs %d\n interval %s", at, gi, gd, p.iv)
		}
		if gi, gd := p.iv.NextFree(at), p.dn.NextFree(at); gi != gd {
			t.Fatalf("NextFree(%d): %d vs %d\n table %s", at, gi, gd, p.iv)
		}
	}
	// Window counts: spans chosen to cover intra-period windows, exact
	// boundary hits, wrap-around, and multi-period spans.
	for i := 0; i < 64; i++ {
		from := Time(rng.Int63n(int64(3*h))) - h
		length := Time(rng.Int63n(int64(3*h + 2)))
		if gi, gd := p.iv.FreeIn(from, length), p.dn.FreeIn(from, length); gi != gd {
			t.Fatalf("FreeIn(%d,%d): %d vs %d\n table %s", from, length, gi, gd, p.iv)
		}
	}
	if gi, gd := p.iv.FreeIn(0, 0), p.dn.FreeIn(0, 0); gi != gd || gi != 0 {
		t.Fatalf("FreeIn(0,0): %d vs %d", gi, gd)
	}
	// Per-task slot sets and the run view of them.
	for id := TaskID(0); id < 8; id++ {
		oi, od := p.iv.OwnedBy(id), p.dn.OwnedBy(id)
		if len(oi) != len(od) {
			t.Fatalf("OwnedBy(%d): %v vs %v", id, oi, od)
		}
		for k := range oi {
			if oi[k] != od[k] {
				t.Fatalf("OwnedBy(%d)[%d]: %d vs %d", id, k, oi[k], od[k])
			}
		}
		var viaRuns []Time
		for _, r := range p.iv.OwnedRuns(id) {
			for s := r.Start; s < r.Start+r.Length; s++ {
				viaRuns = append(viaRuns, s)
			}
		}
		if len(viaRuns) != len(oi) {
			t.Fatalf("OwnedRuns(%d) expands to %d slots, OwnedBy has %d", id, len(viaRuns), len(oi))
		}
		for k := range oi {
			if viaRuns[k] != oi[k] {
				t.Fatalf("OwnedRuns(%d) slot %d: %d vs %d", id, k, viaRuns[k], oi[k])
			}
		}
	}
	fi, fd := p.iv.FreeSlots(), p.dn.FreeSlots()
	if len(fi) != len(fd) {
		t.Fatalf("FreeSlots: %d vs %d entries", len(fi), len(fd))
	}
	for k := range fi {
		if fi[k] != fd[k] {
			t.Fatalf("FreeSlots[%d]: %d vs %d", k, fi[k], fd[k])
		}
	}
	var viaFreeRuns Time
	p.iv.FreeRuns(func(r Run) bool {
		if r.Owner != Free {
			t.Fatalf("FreeRuns visited owner %d", r.Owner)
		}
		viaFreeRuns += r.Length
		return true
	})
	if int(viaFreeRuns) != p.iv.FreeCount() {
		t.Fatalf("FreeRuns sum %d, FreeCount %d", viaFreeRuns, p.iv.FreeCount())
	}
}

// step applies one decoded operation to both tables and verifies that
// they agree on acceptance/rejection. Returns false if the op decoder
// ran out of input (fuzz mode).
func (p *tablePair) step(t testing.TB, op, a, b, c, d int64) {
	t.Helper()
	h := Time(p.iv.Len())
	switch op % 5 {
	case 0: // Assign — at ranges over negatives and ≥H, ids over [-1, 8)
		at := Time(a%(3*int64(h)+1)) - h
		id := TaskID(b%9) - 1
		ei := p.iv.Assign(at, id)
		ed := p.dn.Assign(at, id)
		if (ei == nil) != (ed == nil) {
			t.Fatalf("Assign(%d,%d): interval err=%v dense err=%v", at, id, ei, ed)
		}
	case 1: // Clear
		at := Time(a%(3*int64(h)+1)) - h
		p.iv.Clear(at)
		p.dn.Clear(at)
	case 2: // Release
		id := TaskID(b%10) - 2
		ni := p.iv.Release(id)
		nd := p.dn.Release(id)
		if ni != nd {
			t.Fatalf("Release(%d): %d vs %d", id, ni, nd)
		}
	case 3: // AllocatePeriodic with a period dividing H
		divs := divisors(h)
		period := divs[int(a)%len(divs)]
		deadline := Time(b)%period + 1
		wcet := Time(c)%deadline + 1
		offset := Time(d) % period
		r := Requirement{ID: TaskID(a%6) + 10, Period: period, WCET: wcet, Deadline: deadline, Offset: offset}
		pi, ei := p.iv.AllocatePeriodic(r)
		pd, ed := p.dn.AllocatePeriodic(r)
		if (ei == nil) != (ed == nil) {
			t.Fatalf("AllocatePeriodic(%+v): interval err=%v dense err=%v", r, ei, ed)
		}
		if ei == nil {
			if len(pi) != len(pd) {
				t.Fatalf("AllocatePeriodic(%+v): %d vs %d placements", r, len(pi), len(pd))
			}
			for k := range pi {
				if pi[k].Release != pd[k].Release || len(pi[k].Slots) != len(pd[k].Slots) {
					t.Fatalf("placement %d differs: %+v vs %+v", k, pi[k], pd[k])
				}
				for s := range pi[k].Slots {
					if pi[k].Slots[s] != pd[k].Slots[s] {
						t.Fatalf("placement %d slot %d: %d vs %d", k, s, pi[k].Slots[s], pd[k].Slots[s])
					}
				}
			}
		}
	case 4: // JSON round-trip: re-decode the interval table in place
		blob, err := json.Marshal(p.iv)
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		var back Table
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("unmarshal %s: %v", blob, err)
		}
		p.iv = &back
	}
}

// divisors returns the divisors of h (h ≥ 1), ascending.
func divisors(h Time) []Time {
	var out []Time
	for d := Time(1); d <= h; d++ {
		if h%d == 0 {
			out = append(out, d)
		}
	}
	return out
}

// TestDifferentialRandomOps drives long random op streams over a range
// of hyper-periods and compares the two representations after every
// mutation.
func TestDifferentialRandomOps(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		h := []int{1, 2, 3, 7, 12, 16, 30, 48, 60}[rng.Intn(9)]
		p := newPair(h)
		p.compare(t, rng)
		for op := 0; op < 150; op++ {
			p.step(t, rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63())
			p.compare(t, rng)
		}
	}
}

// TestDifferentialClone verifies Clone independence on both sides.
func TestDifferentialClone(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	p := newPair(24)
	for i := 0; i < 40; i++ {
		p.step(t, rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63(), rng.Int63())
	}
	ci, cd := p.iv.Clone(), p.dn.Clone()
	// Mutate the originals; the clones must not move.
	before := ci.String()
	p.iv.Release(10)
	p.dn.Release(10)
	p.iv.Clear(3)
	p.dn.Clear(3)
	if ci.String() != before {
		t.Fatal("interval clone aliases its source")
	}
	q := &tablePair{iv: ci, dn: cd}
	q.compare(t, rng)
}

// TestDifferentialBuild compares Build (run-emitting) against
// BuildDense (per-slot reference) over random requirement sets: same
// accept/reject decision, identical placements, identical tables.
func TestDifferentialBuild(t *testing.T) {
	periods := []Time{2, 3, 4, 6, 8, 12, 16, 24}
	for seed := int64(0); seed < 300; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(5)
		reqs := make([]Requirement, 0, n)
		for i := 0; i < n; i++ {
			p := periods[rng.Intn(len(periods))]
			d := Time(rng.Int63n(int64(p))) + 1
			w := Time(rng.Int63n(int64(d))) + 1
			o := Time(rng.Int63n(int64(p)))
			reqs = append(reqs, Requirement{ID: TaskID(i), Period: p, WCET: w, Deadline: d, Offset: o})
		}
		ti, pi, ei := Build(reqs)
		td, pd, ed := BuildDense(reqs)
		if (ei == nil) != (ed == nil) {
			t.Fatalf("seed %d: Build err=%v BuildDense err=%v", seed, ei, ed)
		}
		if ei != nil {
			continue
		}
		if ti.String() != td.String() {
			t.Fatalf("seed %d: tables differ\n interval %s\n dense    %s", seed, ti, td)
		}
		if ti.FreeCount() != td.FreeCount() {
			t.Fatalf("seed %d: free %d vs %d", seed, ti.FreeCount(), td.FreeCount())
		}
		if len(pi) != len(pd) {
			t.Fatalf("seed %d: %d vs %d placements", seed, len(pi), len(pd))
		}
		for k := range pi {
			if pi[k].Task != pd[k].Task || pi[k].Release != pd[k].Release || pi[k].Deadline != pd[k].Deadline {
				t.Fatalf("seed %d placement %d: %+v vs %+v", seed, k, pi[k], pd[k])
			}
			if len(pi[k].Slots) != len(pd[k].Slots) {
				t.Fatalf("seed %d placement %d slots: %v vs %v", seed, k, pi[k].Slots, pd[k].Slots)
			}
			for s := range pi[k].Slots {
				if pi[k].Slots[s] != pd[k].Slots[s] {
					t.Fatalf("seed %d placement %d slot %d: %d vs %d", seed, k, s, pi[k].Slots[s], pd[k].Slots[s])
				}
			}
		}
		pair := &tablePair{iv: ti, dn: td}
		pair.compare(t, rng)
	}
}

// FuzzTableOps feeds arbitrary byte streams through the differential
// harness: each 5-byte group decodes one mutation, and the two
// representations are compared after every step.
func FuzzTableOps(f *testing.F) {
	f.Add([]byte{16, 0, 3, 1, 0, 0})
	f.Add([]byte{7, 3, 200, 5, 9, 2, 1, 14, 2, 0, 0, 4, 1, 1, 1})
	f.Add([]byte{48, 0, 1, 2, 3, 4, 2, 9, 9, 9, 9, 3, 5, 4, 2, 1})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 {
			return
		}
		h := int(data[0])%64 + 1
		p := newPair(h)
		rng := rand.New(rand.NewSource(int64(h)))
		for i := 1; i+4 < len(data); i += 5 {
			p.step(t, int64(data[i]), int64(data[i+1]), int64(data[i+2]), int64(data[i+3]), int64(data[i+4]))
			p.invariants(t)
			if p.iv.FreeCount() != p.dn.FreeCount() {
				t.Fatalf("free count diverged: %d vs %d", p.iv.FreeCount(), p.dn.FreeCount())
			}
		}
		p.compare(t, rng)
	})
}
