package noc

import (
	"testing"

	"ioguard/internal/packet"
	"ioguard/internal/slot"
)

func mkPkt(src, dst packet.NodeID, payload int) *packet.Packet {
	return packet.New(packet.Header{
		Src: src, Dst: dst, Kind: packet.Request, Op: packet.Write,
	}, make([]byte, payload))
}

func runUntilDelivered(t *testing.T, m *Mesh, want int64, limit slot.Time) slot.Time {
	t.Helper()
	for now := slot.Time(0); now < limit; now++ {
		m.Step(now)
		if m.Stats().Delivered >= want {
			return now + 1
		}
	}
	t.Fatalf("only %d/%d packets delivered within %d slots", m.Stats().Delivered, want, limit)
	return 0
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Width: 0, Height: 5}); err == nil {
		t.Error("zero width accepted")
	}
	m, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if m.Config().Width != 5 || m.Config().Height != 5 {
		t.Error("default config should be 5x5")
	}
}

func TestCoordMapping(t *testing.T) {
	m, _ := New(DefaultConfig())
	for y := 0; y < 5; y++ {
		for x := 0; x < 5; x++ {
			c := Coord{x, y}
			if got := m.CoordOf(m.NodeAt(c)); got != c {
				t.Fatalf("round trip %v → %v", c, got)
			}
		}
	}
	if (Coord{2, 3}).String() != "(2,3)" {
		t.Error("Coord.String wrong")
	}
}

func TestPortString(t *testing.T) {
	names := map[Port]string{Local: "local", North: "north", South: "south", East: "east", West: "west"}
	for p, want := range names {
		if p.String() != want {
			t.Errorf("%d.String() = %q, want %q", p, p.String(), want)
		}
	}
}

func TestHops(t *testing.T) {
	m, _ := New(DefaultConfig())
	a := m.NodeAt(Coord{0, 0})
	b := m.NodeAt(Coord{4, 4})
	if got := m.Hops(a, b); got != 8 {
		t.Errorf("Hops corner-to-corner = %d, want 8", got)
	}
	if got := m.Hops(a, a); got != 0 {
		t.Errorf("Hops self = %d, want 0", got)
	}
}

func TestSingleDelivery(t *testing.T) {
	m, _ := New(DefaultConfig())
	var got *packet.Packet
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) { got = p }
	p := mkPkt(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{2, 1}), 4)
	if !m.Inject(0, p) {
		t.Fatal("inject failed")
	}
	runUntilDelivered(t, m, 1, 1000)
	if got != p {
		t.Error("delivered packet mismatch")
	}
	if m.Pending() != 0 {
		t.Errorf("Pending = %d after delivery", m.Pending())
	}
}

func TestSelfDelivery(t *testing.T) {
	m, _ := New(DefaultConfig())
	n := m.NodeAt(Coord{3, 3})
	m.Inject(0, mkPkt(n, n, 0))
	end := runUntilDelivered(t, m, 1, 100)
	if end > 20 {
		t.Errorf("self delivery took %d slots", end)
	}
}

func TestDeliveryLatencyMatchesMinWhenUncontended(t *testing.T) {
	m, _ := New(DefaultConfig())
	p := mkPkt(m.NodeAt(Coord{0, 0}), m.NodeAt(Coord{4, 4}), 8)
	var lat slot.Time
	m.OnDeliver = func(pk *packet.Packet, injected, now slot.Time) { lat = now + 1 - injected }
	m.Inject(0, p)
	runUntilDelivered(t, m, 1, 10000)
	if lat != m.MinLatency(p) {
		t.Errorf("uncontended latency %d ≠ MinLatency %d", lat, m.MinLatency(p))
	}
}

func TestInvalidNodesDropped(t *testing.T) {
	m, _ := New(DefaultConfig())
	if m.Inject(0, mkPkt(99, 0, 0)) {
		t.Error("invalid src accepted")
	}
	if m.Inject(0, mkPkt(0, 99, 0)) {
		t.Error("invalid dst accepted")
	}
	if m.Stats().Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", m.Stats().Dropped)
	}
}

func TestBoundedQueueBackpressure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.QueueDepth = 1
	m, _ := New(cfg)
	src := m.NodeAt(Coord{0, 0})
	dst := m.NodeAt(Coord{4, 0})
	if !m.Inject(0, mkPkt(src, dst, 64)) {
		t.Fatal("first inject failed")
	}
	if m.Inject(0, mkPkt(src, dst, 64)) {
		t.Error("second inject into depth-1 FIFO should fail")
	}
}

func TestContentionSerializesSharedLink(t *testing.T) {
	// Two packets from the same source to the same destination must
	// serialize on the shared outgoing link: the second is delivered
	// roughly one link-serialization later than the first.
	m, _ := New(DefaultConfig())
	src := m.NodeAt(Coord{0, 0})
	dst := m.NodeAt(Coord{3, 0})
	var deliveries []slot.Time
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
		deliveries = append(deliveries, now+1)
	}
	p1 := mkPkt(src, dst, 40)
	p2 := mkPkt(src, dst, 40)
	m.Inject(0, p1)
	m.Inject(0, p2)
	runUntilDelivered(t, m, 2, 10000)
	gap := deliveries[1] - deliveries[0]
	link := slot.Time(p1.Flits(4)) + 1
	if gap != link {
		t.Errorf("delivery gap %d, want one link time %d", gap, link)
	}
}

func TestManyPacketsAllDelivered(t *testing.T) {
	m, _ := New(DefaultConfig())
	count := 0
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) { count++ }
	injected := int64(0)
	for i := 0; i < 25; i++ {
		for j := 0; j < 25; j++ {
			if i == j {
				continue
			}
			if m.Inject(0, mkPkt(packet.NodeID(i), packet.NodeID(j), 16)) {
				injected++
			}
		}
	}
	runUntilDelivered(t, m, injected, 200000)
	if int64(count) != injected {
		t.Errorf("delivered %d, want %d", count, injected)
	}
	st := m.Stats()
	if st.AvgDelay() <= 0 || st.MaxDelay < slot.Time(st.AvgDelay()) {
		t.Errorf("stats inconsistent: %+v", st)
	}
}

func TestStatsAvgDelayEmpty(t *testing.T) {
	if (Stats{}).AvgDelay() != 0 {
		t.Error("AvgDelay on empty stats should be 0")
	}
}

func TestContentionIncreasesLatency(t *testing.T) {
	// With background traffic crossing the same column, a packet's
	// latency must be at least its uncontended latency.
	m, _ := New(DefaultConfig())
	probe := mkPkt(m.NodeAt(Coord{0, 2}), m.NodeAt(Coord{4, 2}), 32)
	var probeLat slot.Time
	m.OnDeliver = func(p *packet.Packet, injected, now slot.Time) {
		if p == probe {
			probeLat = now + 1 - injected
		}
	}
	// Background: flood the row 2 links.
	for i := 0; i < 10; i++ {
		m.Inject(0, mkPkt(m.NodeAt(Coord{0, 2}), m.NodeAt(Coord{4, 2}), 64))
	}
	m.Inject(0, probe)
	for now := slot.Time(0); probeLat == 0 && now < 100000; now++ {
		m.Step(now)
	}
	if probeLat <= m.MinLatency(probe) {
		t.Errorf("contended latency %d should exceed MinLatency %d", probeLat, m.MinLatency(probe))
	}
}
