// Run-time table allocation: mode changes. The paper loads σ* once at
// system initialization; real deployments also hot-add and retire
// pre-defined tasks between operating modes. AllocatePeriodic places
// a new periodic task into the *free* slots of a live table (leaving
// every existing reservation untouched), and Release retires one.
package slot

import (
	"fmt"
)

// AllocatePeriodic reserves slots for a new periodic task in the free
// slots of the table: for every job released at offset + k·period
// within one hyper-period, the earliest free slots inside its deadline
// window are assigned. The period must divide the table length so the
// allocation repeats consistently. On failure the table is left
// unchanged.
func (t *Table) AllocatePeriodic(r Requirement) ([]Placement, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	h := Time(t.Len())
	if h == 0 {
		return nil, fmt.Errorf("slot: allocate on empty table")
	}
	if h%r.Period != 0 {
		return nil, fmt.Errorf("slot: period %d does not divide hyper-period %d", r.Period, h)
	}
	for i := 0; i < t.Len(); i++ {
		if t.slots[i] == r.ID {
			return nil, fmt.Errorf("slot: task %d already owns slots", r.ID)
		}
	}
	var assigned []Time
	rollback := func() {
		for _, s := range assigned {
			t.Clear(s)
		}
	}
	var placements []Placement
	for rel := r.Offset; rel < h; rel += r.Period {
		p := Placement{Task: r.ID, Release: rel, Deadline: rel + r.Deadline}
		need := r.WCET
		for s := rel; s < rel+r.Deadline && need > 0; s++ {
			if t.IsFree(s) {
				if err := t.Assign(s, r.ID); err != nil {
					rollback()
					return nil, err
				}
				assigned = append(assigned, s)
				p.Slots = append(p.Slots, s%h)
				need--
			}
		}
		if need > 0 {
			rollback()
			return nil, fmt.Errorf("%w: job released at %d short %d slots before deadline %d",
				ErrOverload, rel, need, p.Deadline)
		}
		placements = append(placements, p)
	}
	return placements, nil
}

// Release frees every slot owned by id and returns how many were
// freed.
func (t *Table) Release(id TaskID) int {
	n := 0
	for i := range t.slots {
		if t.slots[i] == id {
			t.slots[i] = Free
			t.free++
			n++
		}
	}
	if n > 0 {
		t.freePrefix, t.freePos = nil, nil
	}
	return n
}
