package metrics

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"slices"
	"sort"
	"strings"
	"testing"
)

// rankBand locates the estimate's rank range in the exact sorted data
// and returns its distance (in ranks) from the nearest-rank target
// ⌈q·n⌉ — zero when the target falls inside the estimate's own tie
// range.
func rankBand(sorted []float64, est float64, q float64) int64 {
	n := int64(len(sorted))
	target := int64(math.Ceil(q * float64(n)))
	if target < 1 {
		target = 1
	}
	if target > n {
		target = n
	}
	lo := int64(sort.SearchFloat64s(sorted, est)) + 1 // min rank of est
	hi := int64(sort.Search(len(sorted), func(i int) bool { return sorted[i] > est }))
	if lo > hi { // est not present: distance to insertion point
		hi = lo - 1
	}
	switch {
	case target < lo:
		return lo - target
	case target > hi:
		return target - hi
	default:
		return 0
	}
}

// adversarialStreams are the shapes the merge bound must survive:
// monotone ramps stress compaction ordering, constants stress tie
// handling, bimodal stresses the gap between modes.
func adversarialStreams(n int, seed int64) map[string][]float64 {
	rng := rand.New(rand.NewSource(seed))
	sorted := make([]float64, n)
	for i := range sorted {
		sorted[i] = float64(i)
	}
	reversed := make([]float64, n)
	for i := range reversed {
		reversed[i] = float64(n - i)
	}
	constant := make([]float64, n)
	for i := range constant {
		constant[i] = 42
	}
	bimodal := make([]float64, n)
	for i := range bimodal {
		if rng.Intn(2) == 0 {
			bimodal[i] = rng.Float64()
		} else {
			bimodal[i] = 1e6 + rng.Float64()
		}
	}
	random := make([]float64, n)
	for i := range random {
		random[i] = rng.NormFloat64() * 1000
	}
	return map[string][]float64{
		"sorted": sorted, "reversed": reversed, "constant": constant,
		"bimodal": bimodal, "random": random,
	}
}

var testQuantiles = []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// checkRankError asserts every test quantile answers within ⌈εn⌉
// ranks of the exact data.
func checkRankError(t *testing.T, name string, s Sketch, values []float64) {
	t.Helper()
	sorted := append([]float64(nil), values...)
	slices.Sort(sorted)
	n := int64(len(sorted))
	if s.N() != n {
		t.Fatalf("%s: sketch n=%d, want %d", name, s.N(), n)
	}
	tol := int64(math.Ceil(s.Epsilon() * float64(n)))
	for _, q := range testQuantiles {
		est := s.Quantile(q)
		if err := rankBand(sorted, est, q); err > tol {
			t.Errorf("%s: Quantile(%g)=%g off by %d ranks, tolerance %d (n=%d)",
				name, q, est, err, tol, n)
		}
	}
}

// TestKLLRankError: single-sketch accuracy on every adversarial
// stream shape at two stream lengths and two ε values.
func TestKLLRankError(t *testing.T) {
	for _, eps := range []float64{0.005, 0.02} {
		for _, n := range []int{1000, 50_000} {
			for name, vals := range adversarialStreams(n, 7) {
				s := NewKLL(eps, 99)
				for _, v := range vals {
					s.Add(v)
				}
				checkRankError(t, fmt.Sprintf("%s/eps=%g/n=%d", name, eps, n), s, vals)
			}
		}
	}
}

// TestKLLKWayMergeRankError: K-way merges of adversarial streams must
// still answer within ⌈εN⌉ of the combined stream — the property GK
// lacks and the reason KLL backs sweep aggregation. Each of the K
// shards carries a differently shaped stream, merged pairwise in
// order like ParallelSweep's fold.
func TestKLLKWayMergeRankError(t *testing.T) {
	const eps = 0.01
	for _, k := range []int{2, 8, 32} {
		streams := adversarialStreams(2000, int64(k))
		names := make([]string, 0, len(streams))
		for name := range streams {
			names = append(names, name)
		}
		slices.Sort(names)
		agg := NewKLL(eps, 1)
		var all []float64
		for i := 0; i < k; i++ {
			vals := streams[names[i%len(names)]]
			shard := NewKLL(eps, uint64(i)*0x9E37+5)
			for _, v := range vals {
				shard.Add(v)
			}
			if err := agg.Merge(shard); err != nil {
				t.Fatalf("merge shard %d: %v", i, err)
			}
			all = append(all, vals...)
		}
		checkRankError(t, fmt.Sprintf("kway/k=%d", k), agg, all)
	}
}

// TestKLLMergeCommutativeAssociative: (A⊕B)⊕C and A⊕(B⊕C) and
// C⊕(B⊕A) must all answer within the rank-error bound of the same
// combined stream. The summaries themselves differ (coin streams
// combine differently), but the advertised contract — every ordering
// answers within ⌈εN⌉ — must hold for all of them.
func TestKLLMergeCommutativeAssociative(t *testing.T) {
	const eps = 0.01
	streams := adversarialStreams(3000, 21)
	build := func(name string, seed uint64) *KLL {
		s := NewKLL(eps, seed)
		for _, v := range streams[name] {
			s.Add(v)
		}
		return s
	}
	var all []float64
	for _, name := range []string{"sorted", "bimodal", "random"} {
		all = append(all, streams[name]...)
	}
	orders := [][]string{
		{"sorted", "bimodal", "random"},
		{"random", "bimodal", "sorted"},
		{"bimodal", "sorted", "random"},
	}
	for _, order := range orders {
		agg := NewKLL(eps, 17)
		for i, name := range order {
			if err := agg.Merge(build(name, uint64(i+3))); err != nil {
				t.Fatalf("order %v merge %s: %v", order, name, err)
			}
		}
		checkRankError(t, fmt.Sprintf("order=%v", order), agg, all)
	}
	// Right-associated: A⊕(B⊕C).
	right := build("bimodal", 4)
	if err := right.Merge(build("random", 5)); err != nil {
		t.Fatal(err)
	}
	agg := build("sorted", 3)
	if err := agg.Merge(right); err != nil {
		t.Fatal(err)
	}
	checkRankError(t, "right-assoc", agg, all)
}

// TestKLLDeterminism: a sketch is a pure function of (seed, insert
// sequence) — two runs marshal to identical bytes — and a different
// seed actually changes the coin stream (compaction state), so the
// seeding is live, not vestigial.
func TestKLLDeterminism(t *testing.T) {
	build := func(seed uint64) []byte {
		s := NewKLL(0.02, seed)
		rng := rand.New(rand.NewSource(11))
		for i := 0; i < 20_000; i++ {
			s.Add(rng.Float64() * 1000)
		}
		b, err := json.Marshal(s)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := build(7), build(7)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed + same stream produced different sketch bytes")
	}
	if c := build(8); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical sketch state; coin stream is not seeded")
	}
}

// TestKLLMergeDeterminism: folding the same shards in the same order
// twice yields identical bytes (the ParallelSweep byte-identical
// contract at the sketch layer).
func TestKLLMergeDeterminism(t *testing.T) {
	fold := func() []byte {
		agg := NewKLL(0.01, 1)
		for i := 0; i < 16; i++ {
			sh := NewKLL(0.01, uint64(i)+100)
			rng := rand.New(rand.NewSource(int64(i)))
			for j := 0; j < 3000; j++ {
				sh.Add(rng.Float64())
			}
			if err := agg.Merge(sh); err != nil {
				t.Fatal(err)
			}
		}
		b, err := json.Marshal(agg)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if !bytes.Equal(fold(), fold()) {
		t.Fatal("same fold order produced different merged sketch bytes")
	}
}

// TestKLLMergeRejectsIncompatible: ε mismatch and foreign backends
// fail without mutating the receiver.
func TestKLLMergeRejectsIncompatible(t *testing.T) {
	a := NewKLL(0.01, 1)
	for i := 0; i < 100; i++ {
		a.Add(float64(i))
	}
	before, _ := json.Marshal(a)
	if err := a.Merge(NewKLL(0.02, 2)); err == nil {
		t.Fatal("merge with mismatched ε succeeded")
	}
	if err := a.Merge(NewGKSketch(0.01)); err == nil {
		t.Fatal("merge with GK backend succeeded")
	}
	after, _ := json.Marshal(a)
	if !bytes.Equal(before, after) {
		t.Fatal("failed merge mutated the receiver")
	}
}

// TestKLLJSONRoundTrip: encode → decode → encode is byte-stable, and
// the decoded sketch keeps answering within the bound and keeps
// compacting deterministically (same future inserts → same state as
// the never-serialized original).
func TestKLLJSONRoundTrip(t *testing.T) {
	s := NewKLL(0.01, 5)
	rng := rand.New(rand.NewSource(3))
	vals := make([]float64, 30_000)
	for i := range vals {
		vals[i] = rng.ExpFloat64() * 50
		s.Add(vals[i])
	}
	b1, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	dec := &KLL{}
	if err := json.Unmarshal(b1, dec); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(dec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("encode→decode→encode not byte-stable")
	}
	checkRankError(t, "roundtrip", dec, vals)
	// Continued determinism: same tail of inserts lands both in the
	// same state.
	for i := 0; i < 5000; i++ {
		v := rng.Float64()
		s.Add(v)
		dec.Add(v)
	}
	b3, _ := json.Marshal(s)
	b4, _ := json.Marshal(dec)
	if !bytes.Equal(b3, b4) {
		t.Fatal("decoded sketch diverged from original on identical tail inserts")
	}
}

// TestKLLUnmarshalRejectsMalformed: the wire state is never trusted —
// every invariant the decoder re-derives has a hostile case here.
func TestKLLUnmarshalRejectsMalformed(t *testing.T) {
	valid := func() kllJSON {
		return kllJSON{
			Eps: 0.01, K: 300, N: 5,
			Rng: 12345, Levels: [][]float64{{1, 2, 3}, {4}}, // 3·1 + 1·2 = 5
		}
	}
	cases := []struct {
		name   string
		mutate func(*kllJSON)
		want   string
	}{
		{"eps zero", func(w *kllJSON) { w.Eps = 0 }, "ε"},
		{"eps negative", func(w *kllJSON) { w.Eps = -0.1 }, "ε"},
		{"eps above half", func(w *kllJSON) { w.Eps = 0.7 }, "ε"},
		{"k too small", func(w *kllJSON) { w.K = 1 }, "k"},
		{"k absurd", func(w *kllJSON) { w.K = 1 << 30 }, "k"},
		{"no levels", func(w *kllJSON) { w.Levels = nil }, "levels"},
		{"too many levels", func(w *kllJSON) {
			w.Levels = make([][]float64, kllMaxLevels+1)
			w.N = 0
		}, "levels"},
		{"n understates items", func(w *kllJSON) { w.N = 4 }, "disagrees"},
		{"n overstates items", func(w *kllJSON) { w.N = 1 << 40 }, "disagrees"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			w := valid()
			tc.mutate(&w)
			b, err := json.Marshal(w)
			if err != nil {
				t.Fatal(err)
			}
			var s KLL
			if err := json.Unmarshal(b, &s); err == nil {
				t.Fatalf("decode of %q payload succeeded", tc.name)
			} else if tc.want != "" && !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("decode of %q: error %v does not mention %q", tc.name, err, tc.want)
			}
		})
	}
	// Standard JSON cannot spell NaN/Inf, so the hostile forms are
	// out-of-range literals (rejected by the decoder itself) and the
	// finiteness revalidation guards any non-JSON ingress path.
	for _, raw := range []string{
		`{"eps":0.01,"k":300,"n":5,"rng":1,"levels":[[1,1e999,3],[4]]}`,
		`{"eps":0.01,"k":300,"n":5,"rng":1,"levels":[[1,-1e999,3],[4]]}`,
	} {
		var s KLL
		if err := json.Unmarshal([]byte(raw), &s); err == nil {
			t.Fatalf("decode of out-of-range literal payload succeeded: %s", raw)
		}
	}
	if s := (&KLL{}); func() bool {
		w := valid()
		w.Levels[0][1] = math.NaN()
		s.eps, s.k, s.n, s.rng, s.levels = w.Eps, w.K, w.N, w.Rng, w.Levels
		b, err := s.MarshalJSON()
		return err == nil && b != nil
	}() {
		t.Fatal("marshal of sketch holding NaN succeeded")
	}
	// The untouched valid payload must decode — otherwise the table
	// proves nothing.
	b, err := json.Marshal(valid())
	if err != nil {
		t.Fatal(err)
	}
	var s KLL
	if err := json.Unmarshal(b, &s); err != nil {
		t.Fatalf("valid payload rejected: %v", err)
	}
	if s.N() != 5 || s.Tuples() != 4 {
		t.Fatalf("valid payload decoded to n=%d tuples=%d, want 5/4", s.N(), s.Tuples())
	}
}

// TestKLLWireOversizeRejected: a payload claiming more retained items
// than any well-formed sketch could hold is rejected before the
// decoder does allocation-driven work on it.
func TestKLLWireOversizeRejected(t *testing.T) {
	var sb strings.Builder
	sb.WriteString(`{"eps":0.01,"k":300,"n":`)
	n := kllMaxWireItems + 1
	sb.WriteString(fmt.Sprint(n))
	sb.WriteString(`,"rng":1,"levels":[[`)
	for i := 0; i < n; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		sb.WriteByte('1')
	}
	sb.WriteString(`]]}`)
	var s KLL
	if err := json.Unmarshal([]byte(sb.String()), &s); err == nil {
		t.Fatal("oversize payload decoded")
	}
}

// TestKLLMemoryBound: the retained-item count stays O(k) no matter
// how long the stream runs — the bound that makes sweep memory
// independent of trial count.
func TestKLLMemoryBound(t *testing.T) {
	s := NewKLL(0.01, 1)
	rng := rand.New(rand.NewSource(9))
	limit := 4 * s.k // budget ≈ k/(1−c) = 3k, plus slack for lazy compaction
	for i := 0; i < 500_000; i++ {
		s.Add(rng.Float64())
		if i%10_000 == 0 && s.Tuples() > limit {
			t.Fatalf("after %d inserts: %d tuples exceeds bound %d", i+1, s.Tuples(), limit)
		}
	}
	if s.Tuples() > limit {
		t.Fatalf("final size %d exceeds bound %d", s.Tuples(), limit)
	}
}

// TestKLLEmptyAndTiny: empty and few-observation sketches answer
// exactly (no compaction has happened, so ranks are exact).
func TestKLLEmptyAndTiny(t *testing.T) {
	s := NewKLL(0.01, 1)
	if got := s.Quantile(0.5); got != 0 {
		t.Fatalf("empty Quantile = %v, want 0", got)
	}
	for _, v := range []float64{5, 1, 9} {
		s.Add(v)
	}
	if got := s.Quantile(0); got != 1 {
		t.Fatalf("Quantile(0) = %v, want 1", got)
	}
	if got := s.Quantile(0.5); got != 5 {
		t.Fatalf("Quantile(0.5) = %v, want 5", got)
	}
	if got := s.Quantile(1); got != 9 {
		t.Fatalf("Quantile(1) = %v, want 9", got)
	}
}

// TestKLLAddSteadyStateAllocs: Add must be amortized alloc-free —
// level slices retain capacity across compactions, so once the
// pyramid reaches its steady shape the only allocations are the rare
// new-top-level appends, which vanish in the average.
func TestKLLAddSteadyStateAllocs(t *testing.T) {
	s := NewKLL(0.005, 1)
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 200_000; i++ { // reach steady pyramid shape
		s.Add(rng.Float64())
	}
	avg := testing.AllocsPerRun(50_000, func() {
		s.Add(rng.Float64())
	})
	if avg > 0.001 {
		t.Fatalf("steady-state Add allocates %.4f/op, want ~0", avg)
	}
}
