// Package system defines the common harness under which all four
// architectures of the evaluation (Sec. V) execute identical
// workloads: a System accepts released I/O jobs and is stepped by the
// global timer; a Collector records observed completions; Run drives
// one trial and scores it with the paper's metrics.
package system

import (
	"fmt"
	"math/rand"

	"ioguard/internal/metrics"
	"ioguard/internal/rtos"
	"ioguard/internal/slot"
	"ioguard/internal/task"
	"ioguard/internal/vm"
)

// System is one complete architecture under test.
type System interface {
	// Name identifies the system (and its configuration) in reports.
	Name() string
	// Arch returns the underlying architecture class.
	Arch() rtos.Arch
	// Residual returns the tasks an external release engine must
	// drive. Systems that pre-load tasks internally (the I/O-GUARD
	// P-channel) exclude those from the residual.
	Residual() task.Set
	// Submit delivers a job released by its VM at slot now.
	Submit(now slot.Time, j *task.Job)
	// Step advances the system by one slot; call once per slot.
	Step(now slot.Time)
	// Pending visits jobs still buffered inside the system.
	Pending(visit func(j *task.Job))
	// Dropped returns the count of jobs rejected by full queues.
	Dropped() int64
}

// Collector records observed completions. Systems call Complete from
// their response paths; the collector keeps the observation time
// (which includes response latency) separate from the job's raw
// Finish slot.
type Collector struct {
	jobs []*task.Job
	at   []slot.Time
}

// Complete records that j's requester observed completion at slot at.
func (c *Collector) Complete(j *task.Job, at slot.Time) {
	c.jobs = append(c.jobs, j)
	c.at = append(c.at, at)
}

// Completed returns the number of recorded completions.
func (c *Collector) Completed() int { return len(c.jobs) }

// Each visits the recorded completions in order.
func (c *Collector) Each(visit func(j *task.Job, at slot.Time)) {
	for i, j := range c.jobs {
		visit(j, c.at[i])
	}
}

// critical reports whether a task's deadline misses fail the trial
// (safety and function tasks; synthetic load does not count).
func critical(t *task.Sporadic) bool {
	return t.Kind == task.Safety || t.Kind == task.Function
}

// Result scores a finished trial: completed jobs are checked against
// their deadlines at the *observed* completion time; jobs still
// pending whose deadline has passed count as misses; pending jobs
// whose deadline lies beyond the horizon are censored.
func (c *Collector) Result(sys System, horizon slot.Time) *metrics.TrialResult {
	res := &metrics.TrialResult{Horizon: horizon, Dropped: sys.Dropped()}
	for i, j := range c.jobs {
		res.Completed++
		res.BytesServed += int64(j.Task.OpBytes)
		res.Response.AddTime(c.at[i] - j.Release)
		tard := c.at[i] - j.Deadline
		if tard < 0 {
			tard = 0
		}
		res.Tardiness.AddTime(tard)
		if c.at[i] > j.Deadline {
			if critical(j.Task) {
				res.CriticalMisses++
			} else {
				res.OtherMisses++
			}
		}
	}
	sys.Pending(func(j *task.Job) {
		res.Unfinished++
		if j.Deadline < horizon {
			if critical(j.Task) {
				res.CriticalMisses++
			} else {
				res.OtherMisses++
			}
		}
	})
	return res
}

// Trial parameterizes one execution.
type Trial struct {
	VMs     int
	Tasks   task.Set
	Horizon slot.Time
	Seed    int64
}

// Builder constructs a system wired to a collector. It receives the
// full workload; the returned system's Residual() tells the runner
// which tasks to drive externally.
type Builder func(tr Trial, col *Collector) (System, error)

// Run executes one trial: a deterministic VM fleet releases the
// system's residual tasks while the system steps once per slot, then
// the collector scores the outcome.
func Run(build Builder, tr Trial) (*metrics.TrialResult, error) {
	if tr.Horizon <= 0 {
		return nil, fmt.Errorf("system: non-positive horizon %d", tr.Horizon)
	}
	if err := tr.Tasks.Validate(); err != nil {
		return nil, err
	}
	col := &Collector{}
	sys, err := build(tr, col)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(tr.Seed))
	fleet, err := vm.NewFleet(tr.VMs, sys.Residual(), rng)
	if err != nil {
		return nil, err
	}
	for now := slot.Time(0); now < tr.Horizon; now++ {
		fleet.Release(now, func(j *task.Job) { sys.Submit(now, j) })
		sys.Step(now)
	}
	res := col.Result(sys, tr.Horizon)
	res.Released = fleet.Released()
	return res, nil
}

// Sweep runs `trials` independent seeds of one configuration and
// aggregates them (the paper repeats each configuration 1000 times;
// callers choose how many fit their budget). It is the single-worker
// special case of ParallelSweep.
func Sweep(build Builder, tr Trial, trials int) (*metrics.Aggregate, error) {
	return ParallelSweep(build, tr, trials, 1)
}
