// meshTransport: shared NoC plumbing for the baselines that move I/O
// over the on-chip network (BS|Legacy, BS|RT-XEN). Processors occupy
// the upper mesh rows, I/O controllers the bottom row; requests and
// responses are encapsulated as packets (assumption (ii) of Sec. II)
// and contend in the routers' FIFO arbiters.
package baseline

import (
	"fmt"
	"sync"
	"sync/atomic"

	"ioguard/internal/noc"
	"ioguard/internal/packet"
	"ioguard/internal/slot"
	"ioguard/internal/system"
	"ioguard/internal/task"
)

// jobKey identifies an in-flight job across the packet boundary.
type jobKey struct {
	task uint16
	seq  uint32
}

// maxPacketPayload caps the command/descriptor payload carried across
// the NoC per operation; bulk data moves by DMA outside the request
// path, so only the descriptor contends in the routers.
const maxPacketPayload = 64

// meshTransport carries jobs to per-device stations over a mesh NoC.
type meshTransport struct {
	mesh     *noc.Mesh
	vms      int
	col      *system.Collector
	stations map[string]*station
	devTile  map[string]packet.NodeID
	tileDev  map[packet.NodeID]string
	// inflight is touched from both region shards (the processor band
	// inserts on request injection, the device row looks jobs up on
	// request delivery); the mutex is uncontended in monolithic runs.
	inflightMu sync.Mutex
	inflight   map[jobKey]*task.Job
	respCost   slot.Time // software response-path cost at the processor

	// Region mode (engaged by regionShards): the mesh is partitioned
	// into the processor band and the device row, each advancing on its
	// own virtual clock with boundary-flit horizons. The injector
	// indirection lets sendRequest/sendResponse target whichever view
	// of the mesh is live; monolithic runs keep mesh.Inject. regions is
	// atomic so a stats snapshot may race the Shards() call that
	// engages region mode.
	regions    atomic.Pointer[[]*noc.Region]
	shards     []system.Shard
	reqInject  func(now slot.Time, p *packet.Packet) bool
	respInject func(now slot.Time, p *packet.Packet) bool
	// psink, when set by the parallel executor, receives completions
	// instead of the collector. Only the processor shard's goroutine
	// calls it.
	psink func(j *task.Job, at slot.Time)
	// respond routes a station's completion toward the NoC. Monolithic
	// runs inject immediately (the mesh step for this slot already
	// ran); the device shard instead stages the response and injects
	// it after the next slot's boundary arrivals are applied, keeping
	// the FIFO order of same-queue pushes identical to a dense run.
	respond func(dev string, j *task.Job, finished slot.Time)
	// dropped counts jobs lost in transport (unknown device, full
	// injection queue, unmatched delivery). Atomic: the Legacy/RT-Xen
	// transports run single-shard today, but the counter is reachable
	// from sharded submit paths and may be snapshotted concurrently.
	dropped atomic.Int64
	// observe optionally post-processes the observed completion time
	// (RT-Xen delays it to the VM's next VCPU window).
	observe func(vmID int, at slot.Time) slot.Time
}

// newMeshTransport wires a transport over a fresh default mesh for
// the given devices, creating one globalFIFO station per device.
func newMeshTransport(vms int, devices []string, col *system.Collector, respCost slot.Time) (*meshTransport, error) {
	mesh, err := noc.New(noc.DefaultConfig())
	if err != nil {
		return nil, err
	}
	cfg := mesh.Config()
	if len(devices) > cfg.Width {
		return nil, fmt.Errorf("baseline: %d devices exceed the mesh's device row (%d)", len(devices), cfg.Width)
	}
	t := &meshTransport{
		mesh:     mesh,
		vms:      vms,
		col:      col,
		stations: make(map[string]*station),
		devTile:  make(map[string]packet.NodeID),
		tileDev:  make(map[packet.NodeID]string),
		inflight: make(map[jobKey]*task.Job),
		respCost: respCost,
	}
	for i, dev := range devices {
		tile := mesh.NodeAt(noc.Coord{X: i, Y: cfg.Height - 1})
		t.devTile[dev] = tile
		t.tileDev[tile] = dev
		devName := dev
		st, err := newStation(dev, globalFIFO, vms, controllerSetupSlots, func(j *task.Job, finished slot.Time) {
			t.respond(devName, j, finished)
		})
		if err != nil {
			return nil, err
		}
		t.stations[dev] = st
	}
	mesh.OnDeliver = t.onDeliver
	t.reqInject = mesh.Inject
	t.respInject = mesh.Inject
	t.respond = t.sendResponse
	return t, nil
}

// vmTile maps a VM to its processor tile (top rows of the mesh; VMs
// beyond the processor count share cores, as in the prototype's up to
// three guests per MicroBlaze).
func (t *meshTransport) vmTile(vmID int) packet.NodeID {
	cfg := t.mesh.Config()
	cores := cfg.Width * (cfg.Height - 1)
	return packet.NodeID(vmID % cores)
}

func key(j *task.Job) jobKey {
	return jobKey{task: uint16(j.Task.ID), seq: uint32(j.Seq)}
}

// sendRequest injects a job's request packet at its VM's tile.
func (t *meshTransport) sendRequest(now slot.Time, j *task.Job) {
	tile, ok := t.devTile[j.Task.Device]
	if !ok {
		t.dropped.Add(1)
		return
	}
	payload := j.Task.OpBytes
	if payload > maxPacketPayload {
		payload = maxPacketPayload
	}
	p := packet.New(packet.Header{
		Src:      t.vmTile(j.Task.VM),
		Dst:      tile,
		VM:       uint8(j.Task.VM),
		Kind:     packet.Request,
		Op:       packet.Write,
		Task:     uint16(j.Task.ID),
		Seq:      uint32(j.Seq),
		Deadline: j.Deadline,
	}, make([]byte, payload))
	t.inflightMu.Lock()
	t.inflight[key(j)] = j
	t.inflightMu.Unlock()
	if !t.reqInject(now, p) {
		t.inflightMu.Lock()
		delete(t.inflight, key(j))
		t.inflightMu.Unlock()
		t.dropped.Add(1)
	}
}

// sendResponse injects the completion notification back to the VM.
func (t *meshTransport) sendResponse(dev string, j *task.Job, finished slot.Time) {
	payload := j.Task.OpBytes
	if payload > maxPacketPayload {
		payload = maxPacketPayload
	}
	p := packet.New(packet.Header{
		Src:      t.devTile[dev],
		Dst:      t.vmTile(j.Task.VM),
		VM:       uint8(j.Task.VM),
		Kind:     packet.Response,
		Op:       packet.Write,
		Task:     uint16(j.Task.ID),
		Seq:      uint32(j.Seq),
		Deadline: j.Deadline,
	}, make([]byte, payload))
	if !t.respInject(finished, p) {
		t.dropped.Add(1)
	}
}

// onDeliver routes delivered packets: requests into the device
// station, responses to the collector.
// debugDeliver, when set, observes every packet delivery (test hook).
var debugDeliver func(kind packet.Kind, task uint16, seq uint32, injected, now slot.Time)

func (t *meshTransport) onDeliver(p *packet.Packet, injected, now slot.Time) {
	if debugDeliver != nil {
		debugDeliver(p.Kind, p.Task, p.Seq, injected, now)
	}
	k := jobKey{task: p.Task, seq: p.Seq}
	t.inflightMu.Lock()
	j, ok := t.inflight[k]
	if ok && p.Kind == packet.Response {
		delete(t.inflight, k)
	}
	t.inflightMu.Unlock()
	if !ok {
		t.dropped.Add(1)
		return
	}
	switch p.Kind {
	case packet.Request:
		dev, ok := t.tileDev[p.Dst]
		if !ok {
			t.dropped.Add(1)
			return
		}
		if err := t.stations[dev].enqueue(j); err != nil {
			t.dropped.Add(1)
		}
	case packet.Response:
		at := now + 1 + t.respCost
		if t.observe != nil {
			at = t.observe(j.Task.VM, at)
		}
		if t.psink != nil {
			t.psink(j, at)
		} else if t.col != nil {
			t.col.Complete(j, at)
		}
	}
}

// step advances the mesh and every station one slot.
func (t *meshTransport) step(now slot.Time) {
	t.mesh.Step(now)
	for _, dev := range t.deviceNames() {
		t.stations[dev].step(now)
	}
}

// nextWork reports when the transport next needs a step: now while
// any station is serving/queueing work, the mesh's transit horizon
// while packets are only counting down link serialization (the gap
// the fast-forward may skip), slot.Never once everything has drained
// (the mesh and stations generate no work on their own).
func (t *meshTransport) nextWork(now slot.Time) slot.Time {
	for _, st := range t.stations {
		if st.busy() {
			return now
		}
	}
	return t.mesh.NextWork(now)
}

// skipTo bulk-advances the mesh's in-transit links over a skipped
// span. Stations are idle whenever the engine skips (nextWork pins
// busy stations to now), so only link countdowns need replaying.
func (t *meshTransport) skipTo(from, to slot.Time) {
	t.mesh.SkipTo(from, to)
}

// deviceNames returns the devices in deterministic (tile) order.
func (t *meshTransport) deviceNames() []string {
	cfg := t.mesh.Config()
	out := make([]string, 0, len(t.devTile))
	for i := 0; i < cfg.Width; i++ {
		tile := t.mesh.NodeAt(noc.Coord{X: i, Y: cfg.Height - 1})
		if dev, ok := t.tileDev[tile]; ok {
			out = append(out, dev)
		}
	}
	return out
}

// pendingJobs visits all in-flight jobs (in the mesh or at stations).
func (t *meshTransport) pendingJobs(visit func(j *task.Job)) {
	t.inflightMu.Lock()
	defer t.inflightMu.Unlock()
	for _, j := range t.inflight {
		visit(j)
	}
}

// meshStats merges the monolithic mesh counters with the per-region
// ones. Exactly one view carries traffic per trial (dense runs use
// the mesh, sharded runs the regions), so the merge is a plain sum.
func (t *meshTransport) meshStats() noc.Stats {
	s := t.mesh.Stats()
	if rp := t.regions.Load(); rp != nil {
		for _, r := range *rp {
			s = s.Merge(r.Stats())
		}
	}
	return s
}

// regionShards partitions the transport for multi-shard execution:
// the processor band (rows 0..H-2, where requests originate and
// responses eject) and the device row (row H-1, stations included)
// each become one shard over a noc.Region. Injectors are rebound to
// the regions — safe because system.Run only calls Shards() on the
// non-dense path, and a system instance drives exactly one trial.
func (t *meshTransport) regionShards(pipe guestPipe, devices []string, submit func(now slot.Time, j *task.Job)) []system.Shard {
	if t.shards != nil {
		return t.shards
	}
	cfg := t.mesh.Config()
	regions, err := noc.Regions(cfg, []int{cfg.Height - 1, 1})
	if err != nil {
		// cfg came from a validated mesh, so this cannot happen; fall
		// back to the monolithic single-shard path rather than panic.
		return nil
	}
	proc, dev := regions[0], regions[1]
	proc.OnDeliver = t.onDeliver
	dev.OnDeliver = t.onDeliver
	// The device row consumes delivered requests and its stations emit
	// responses back toward the processor band: same-side feedback the
	// region's horizon accounting must know about.
	dev.Loopback = true
	t.regions.Store(&regions)
	t.reqInject = proc.Inject
	t.respInject = dev.Inject
	stations := make([]*station, 0, len(t.stations))
	for _, name := range t.deviceNames() {
		stations = append(stations, t.stations[name])
	}
	ds := &devShard{t: t, r: dev, stations: stations}
	t.respond = ds.stageResponse
	t.shards = []system.Shard{
		&procShard{t: t, r: proc, pipe: pipe, devices: devices, submit: submit},
		ds,
	}
	return t.shards
}
