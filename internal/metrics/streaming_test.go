package metrics

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// fill feeds the same values to an exact Sample and a Streaming
// recorder.
func fill(values []float64, eps float64) (*Sample, *Streaming) {
	s := &Sample{}
	st := NewStreaming(eps)
	for _, v := range values {
		s.Add(v)
		st.Add(v)
	}
	return s, st
}

// datasets returns named value sequences covering the shapes the
// collector sees: clustered response times with duplicates, monotone
// drains, heavy tails.
func datasets(rng *rand.Rand, n int) map[string][]float64 {
	uniform := make([]float64, n)
	for i := range uniform {
		uniform[i] = rng.Float64() * 4000
	}
	clustered := make([]float64, n)
	for i := range clustered {
		// Few distinct values, like a tight schedule's response times.
		clustered[i] = float64(10 + 5*rng.Intn(8))
	}
	ascending := make([]float64, n)
	for i := range ascending {
		ascending[i] = float64(i)
	}
	tailed := make([]float64, n)
	for i := range tailed {
		v := rng.ExpFloat64() * 100
		tailed[i] = math.Floor(v)
	}
	return map[string][]float64{
		"uniform": uniform, "clustered": clustered,
		"ascending": ascending, "tailed": tailed,
	}
}

func TestStreamingMatchesSampleMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for name, values := range datasets(rng, 5000) {
		s, st := fill(values, DefaultSketchEpsilon)
		relClose := func(got, want, tol float64, what string) {
			scale := math.Abs(want)
			if scale < 1 {
				scale = 1
			}
			if math.Abs(got-want) > tol*scale {
				t.Errorf("%s/%s: got %v, want %v", name, what, got, want)
			}
		}
		if st.N() != s.N() {
			t.Errorf("%s: n=%d want %d", name, st.N(), s.N())
		}
		relClose(st.Mean(), s.Mean(), 1e-9, "mean")
		relClose(st.Variance(), s.Variance(), 1e-9, "variance")
		relClose(st.StdDev(), s.StdDev(), 1e-9, "stddev")
		if st.Min() != s.Min() || st.Max() != s.Max() {
			t.Errorf("%s: min/max = %v/%v, want %v/%v", name, st.Min(), st.Max(), s.Min(), s.Max())
		}
	}
}

// rankErr returns how far v sits, in ranks, from the nearest-rank
// target in the sorted reference data: 0 when v's value range covers
// the target rank (duplicates count as a range).
func rankErr(sorted []float64, target int, v float64) int {
	lo := sort.SearchFloat64s(sorted, v)                                      // first index ≥ v
	hi := sort.Search(len(sorted), func(i int) bool { return sorted[i] > v }) // first index > v
	ti := target - 1                                                          // 0-based
	if ti >= lo && ti < hi {
		return 0
	}
	if ti < lo {
		return lo - ti
	}
	return ti - hi + 1
}

// TestGKQuantileRankBound is the sketch's contract: across randomized
// data sets, the value returned for p50/p95/p99 has a rank within
// ⌈εn⌉ of the exact nearest rank used by Sample.Percentile.
func TestGKQuantileRankBound(t *testing.T) {
	for _, seed := range []int64{1, 42, 7919} {
		rng := rand.New(rand.NewSource(seed))
		for _, n := range []int{100, 2000, 20000} {
			for name, values := range datasets(rng, n) {
				_, st := fill(values, DefaultSketchEpsilon)
				sorted := append([]float64(nil), values...)
				sort.Float64s(sorted)
				for _, p := range []float64{50, 95, 99} {
					got := st.Percentile(p)
					target := int(math.Ceil(p / 100 * float64(n)))
					if target < 1 {
						target = 1
					}
					tol := int(math.Ceil(DefaultSketchEpsilon * float64(n)))
					if e := rankErr(sorted, target, got); e > tol {
						t.Errorf("seed %d %s n=%d p%g: value %v is %d ranks off (tol %d)",
							seed, name, n, p, got, e, tol)
					}
				}
			}
		}
	}
}

// TestStreamingSmallN: with fewer observations than the sketch ever
// compresses, percentiles are exact.
func TestStreamingSmallN(t *testing.T) {
	values := []float64{5, 1, 9, 3, 7}
	s, st := fill(values, DefaultSketchEpsilon)
	for _, p := range []float64{0, 20, 50, 80, 100} {
		if got, want := st.Percentile(p), s.Percentile(p); got != want {
			t.Errorf("p%g = %v, want %v", p, got, want)
		}
	}
}

func TestStreamingEmpty(t *testing.T) {
	st := NewStreaming(0)
	if st.N() != 0 || st.Mean() != 0 || st.Variance() != 0 || st.Min() != 0 ||
		st.Max() != 0 || st.Percentile(99) != 0 {
		t.Errorf("empty streaming recorder must answer zeros: %s", st)
	}
}

// TestSketchMemoryBounded: the tuple count stays far below n and
// stops growing with it — the O(1)-memory claim of streaming mode.
func TestSketchMemoryBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	st := NewStreaming(DefaultSketchEpsilon)
	var at100k int
	for i := 0; i < 400_000; i++ {
		st.Add(rng.Float64() * 1e6)
		if i == 100_000 {
			at100k = st.SketchTuples()
		}
	}
	if st.SketchTuples() > 4*at100k {
		t.Errorf("sketch grew from %d to %d tuples between 100k and 400k inserts; want ~logarithmic",
			at100k, st.SketchTuples())
	}
	if st.SketchTuples() > 4000 {
		t.Errorf("sketch holds %d tuples, want O((1/ε)·log(εn)) ≪ n", st.SketchTuples())
	}
}

// TestStreamingSteadyStateAllocs: after warm-up, Add must not
// allocate — the collector's streaming hot path depends on it.
func TestStreamingSteadyStateAllocs(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	st := NewStreaming(DefaultSketchEpsilon)
	for i := 0; i < 200_000; i++ {
		st.Add(rng.Float64() * 4096)
	}
	var x uint64 = 12345
	allocs := testing.AllocsPerRun(50_000, func() {
		// Deterministic LCG: varied insert positions without rand's
		// allocation behavior in the measured region.
		x = x*6364136223846793005 + 1442695040888963407
		st.Add(float64(x >> 52))
	})
	if allocs > 0.001 {
		t.Errorf("steady-state Add allocates %.4f/op, want ~0", allocs)
	}
}

func TestTeeDuplicatesToSinks(t *testing.T) {
	h, err := NewHistogram(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	tee := NewTee(&Sample{}, h)
	for _, v := range []float64{10, 30, 60, 90, 250} {
		tee.Add(v)
	}
	if tee.N() != 5 || tee.Mean() != 88 {
		t.Errorf("tee stats wrong: n=%d mean=%v", tee.N(), tee.Mean())
	}
	if h.N() != 5 {
		t.Errorf("histogram sink saw %d values, want 5", h.N())
	}
	if _, over := h.OutOfRange(); over != 1 {
		t.Errorf("overflow = %d, want 1", over)
	}
}

func TestStreamingStringMirrorsSampleFormat(t *testing.T) {
	values := []float64{1, 2, 3, 4}
	s, st := fill(values, DefaultSketchEpsilon)
	if s.String() != st.String() {
		t.Errorf("summaries diverge on exact data:\nsample:    %s\nstreaming: %s", s, st)
	}
}
