// DistFold: the cross-trial distribution accumulator behind
// Aggregate. Per-trial recorders arrive in a fixed fold order (trial
// order — RunCells returns results by input index) and fold by
// backend:
//
//   - exact *Sample recorders fold value-by-value into an exact
//     cross-trial Sample — the reference the ε·n acceptance band is
//     measured against;
//   - KLL-backed *Streaming recorders Merge — counts, moments and
//     extrema combine exactly, quantiles at the common ε (KLL's bound
//     survives merging);
//   - GK-backed *Streaming recorders cannot fold without compounding
//     ε, so they are counted as unmerged and the fold answers no
//     quantiles (the -metrics stream-gk back-compat mode).
//
// A sweep uses one metrics mode throughout, so in practice exactly
// one of the three paths populates.
package metrics

import (
	"encoding/json"
	"fmt"
)

// DistFold accumulates one cross-trial distribution. The zero value
// is an empty fold ready for AddRecorder.
type DistFold struct {
	exact    *Sample
	merged   *Streaming
	unmerged int // recorders that could not fold (GK backend)
}

// unwrapTee peels observation tees off a recorder: the collector
// wraps its primary recorder in a metrics.Tee when trace sinks or
// histograms attach, and the fold wants the primary.
func unwrapTee(r Recorder) Recorder {
	for {
		t, ok := r.(*Tee)
		if !ok {
			return r
		}
		r = t.Recorder
	}
}

// AddRecorder folds one trial's recorder. Call in trial order: the
// merged sketch's state is a pure function of the fold sequence.
func (f *DistFold) AddRecorder(r Recorder) {
	if r == nil {
		return
	}
	switch p := unwrapTee(r).(type) {
	case *Sample:
		if f.exact == nil {
			f.exact = &Sample{}
		}
		p.Each(f.exact.Add)
	case *Streaming:
		if !p.Mergeable() {
			f.unmerged++
			return
		}
		if f.merged == nil {
			c, err := p.Clone()
			if err != nil {
				f.unmerged++
				return
			}
			f.merged = c
			return
		}
		if err := f.merged.Merge(p); err != nil {
			f.unmerged++
		}
	default:
		f.unmerged++
	}
}

// Merge folds another DistFold into the receiver (aggregate-of-
// aggregates: per-cell folds combine into a per-sweep fold).
func (f *DistFold) Merge(o *DistFold) error {
	if o.exact != nil {
		if f.exact == nil {
			f.exact = &Sample{}
		}
		o.exact.Each(f.exact.Add)
	}
	if o.merged != nil {
		if f.merged == nil {
			c, err := o.merged.Clone()
			if err != nil {
				return err
			}
			f.merged = c
		} else if err := f.merged.Merge(o.merged); err != nil {
			return err
		}
	}
	f.unmerged += o.unmerged
	return nil
}

// Resolved reports whether the fold can answer distribution queries
// (at least one recorder folded and none were dropped as unmerged).
func (f *DistFold) Resolved() bool {
	return f.unmerged == 0 && (f.exact != nil || f.merged != nil)
}

// Unmerged returns the count of recorders that could not fold.
func (f *DistFold) Unmerged() int { return f.unmerged }

// recorder returns the backing recorder, preferring the exact fold.
func (f *DistFold) recorder() Recorder {
	if f.exact != nil {
		return f.exact
	}
	if f.merged != nil {
		return f.merged
	}
	return nil
}

// N returns the total folded observation count.
func (f *DistFold) N() int {
	n := 0
	if f.exact != nil {
		n += f.exact.N()
	}
	if f.merged != nil {
		n += f.merged.N()
	}
	return n
}

// Mean returns the mean of the folded observations (exact in every
// resolvable mode), or 0 when empty.
func (f *DistFold) Mean() float64 {
	if r := f.recorder(); r != nil {
		return r.Mean()
	}
	return 0
}

// Max returns the largest folded observation (exact), or 0 when empty.
func (f *DistFold) Max() float64 {
	if r := f.recorder(); r != nil {
		return r.Max()
	}
	return 0
}

// Quantile returns the q-th (q in [0,1]) cross-trial quantile: exact
// from the exact fold, within ⌈εN⌉ ranks from the merged sketch; 0
// when the fold is empty or unmerged-only.
func (f *DistFold) Quantile(q float64) float64 {
	if r := f.recorder(); r != nil {
		return r.Percentile(q * 100)
	}
	return 0
}

// Sketch returns the merged KLL-backed recorder, or nil when the fold
// is exact or empty — the handle the results pipeline serializes into
// the nightly trajectory.
func (f *DistFold) Sketch() *Streaming { return f.merged }

// String renders the fold for aggregate tables: a stable one-line
// summary per fold state.
func (f *DistFold) String() string {
	if f.unmerged > 0 {
		return fmt.Sprintf("per-trial only (%d unmerged sketches; use -metrics stream for merged quantiles)", f.unmerged)
	}
	r := f.recorder()
	if r == nil || r.N() == 0 {
		return "n=0"
	}
	kind := "exact"
	if f.merged != nil {
		kind = fmt.Sprintf("merged ε=%g", f.merged.Epsilon())
	}
	return fmt.Sprintf("n=%d mean=%.2f p50=%.0f p90=%.0f p99=%.0f max=%.0f [%s]",
		r.N(), r.Mean(), r.Percentile(50), r.Percentile(90), r.Percentile(99), r.Max(), kind)
}

// distFoldJSON is the fold's wire form: only the merged sketch ships
// (the exact fold is a test-time reference, never persisted).
type distFoldJSON struct {
	Merged   *Streaming `json:"merged,omitempty"`
	Unmerged int        `json:"unmerged,omitempty"`
}

// MarshalJSON serializes the mergeable state. Folds holding an exact
// reference refuse: persisting megabytes of raw values is what the
// sketch pipeline exists to avoid.
func (f *DistFold) MarshalJSON() ([]byte, error) {
	if f.exact != nil {
		return nil, fmt.Errorf("metrics: DistFold with exact buffer does not serialize")
	}
	return json.Marshal(distFoldJSON{Merged: f.merged, Unmerged: f.unmerged})
}

// UnmarshalJSON decodes a fold; the embedded recorder revalidates its
// own invariants (see Streaming.UnmarshalJSON), and the unmerged
// count must be non-negative.
func (f *DistFold) UnmarshalJSON(data []byte) error {
	var w distFoldJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	if w.Unmerged < 0 {
		return fmt.Errorf("metrics: DistFold wire unmerged=%d negative", w.Unmerged)
	}
	f.exact = nil
	f.merged = w.Merged
	f.unmerged = w.Unmerged
	return nil
}
