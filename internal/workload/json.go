// JSON import/export of task sets, so generated workloads can be
// frozen, shipped to other tools (cmd/ioguard-analyze) and replayed
// bit-identically — the repository analogue of the paper's fixed
// experimental inputs.
package workload

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// taskJSON is the stable wire form of one task.
type taskJSON struct {
	ID       int    `json:"id"`
	Name     string `json:"name"`
	VM       int    `json:"vm"`
	Kind     string `json:"kind"`
	Period   int64  `json:"period"`
	WCET     int64  `json:"wcet"`
	Deadline int64  `json:"deadline"`
	Device   string `json:"device"`
	OpBytes  int    `json:"opBytes"`
	Jitter   int64  `json:"jitter,omitempty"`
}

func kindFromString(s string) (task.Kind, error) {
	switch s {
	case "safety":
		return task.Safety, nil
	case "function":
		return task.Function, nil
	case "synthetic":
		return task.Synthetic, nil
	default:
		return 0, fmt.Errorf("workload: unknown kind %q", s)
	}
}

// MarshalSet encodes a task set as indented JSON.
func MarshalSet(ts task.Set) ([]byte, error) {
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	out := make([]taskJSON, len(ts))
	for i, t := range ts {
		out[i] = taskJSON{
			ID: t.ID, Name: t.Name, VM: t.VM, Kind: t.Kind.String(),
			Period: int64(t.Period), WCET: int64(t.WCET), Deadline: int64(t.Deadline),
			Device: t.Device, OpBytes: t.OpBytes, Jitter: int64(t.Jitter),
		}
	}
	return json.MarshalIndent(out, "", "  ")
}

// UnmarshalSet decodes and validates a task set.
func UnmarshalSet(data []byte) (task.Set, error) {
	var in []taskJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return nil, err
	}
	ts := make(task.Set, len(in))
	for i, t := range in {
		kind, err := kindFromString(t.Kind)
		if err != nil {
			return nil, err
		}
		ts[i] = task.Sporadic{
			ID: t.ID, Name: t.Name, VM: t.VM, Kind: kind,
			Period: slot.Time(t.Period), WCET: slot.Time(t.WCET), Deadline: slot.Time(t.Deadline),
			Device: t.Device, OpBytes: t.OpBytes, Jitter: slot.Time(t.Jitter),
		}
	}
	if err := ts.Validate(); err != nil {
		return nil, err
	}
	return ts, nil
}

// Describe renders a human-readable summary of a task set: per-kind
// counts, per-device utilization, hyper-period and the heaviest
// tasks.
func Describe(ts task.Set) string {
	var b strings.Builder
	kinds := map[task.Kind]int{}
	for _, t := range ts {
		kinds[t.Kind]++
	}
	fmt.Fprintf(&b, "tasks: %d (%d safety, %d function, %d synthetic) across %d VMs\n",
		len(ts), kinds[task.Safety], kinds[task.Function], kinds[task.Synthetic], len(ts.VMs()))
	fmt.Fprintf(&b, "hyper-period: %d slots\n", ts.Hyperperiod())
	devs := DeviceUtilization(ts)
	names := make([]string, 0, len(devs))
	for d := range devs {
		names = append(names, d)
	}
	sort.Strings(names)
	for _, d := range names {
		fmt.Fprintf(&b, "device %-10s utilization %.3f\n", d, devs[d])
	}
	heavy := append(task.Set(nil), ts...)
	sort.Slice(heavy, func(i, j int) bool { return heavy[i].Utilization() > heavy[j].Utilization() })
	n := 5
	if len(heavy) < n {
		n = len(heavy)
	}
	b.WriteString("heaviest tasks:\n")
	for _, t := range heavy[:n] {
		fmt.Fprintf(&b, "  %-24s U=%.4f (T=%d C=%d D=%d, %s, vm%d)\n",
			t.Name, t.Utilization(), t.Period, t.WCET, t.Deadline, t.Device, t.VM)
	}
	return b.String()
}
