// Per-task breakdowns of a trial: which tasks missed, and each task's
// response-time distribution. Used by examples and debugging; the
// headline metrics stay in metrics.TrialResult.
package system

import (
	"fmt"
	"sort"
	"strings"

	"ioguard/internal/metrics"
	"ioguard/internal/slot"
	"ioguard/internal/task"
)

// TaskStat summarizes one task's completions within a trial.
type TaskStat struct {
	Task      *task.Sporadic
	Completed int64
	Misses    int64
	// Response records the task's response times: an exact *Sample in
	// the default metrics mode, a bounded-memory *Streaming recorder
	// in streaming mode.
	Response metrics.Recorder
}

// observe folds one completion into the stat.
func (st *TaskStat) observe(j *task.Job, at slot.Time) {
	st.Completed++
	st.Response.Add(float64(at - j.Release))
	if at > j.Deadline {
		st.Misses++
	}
}

// ByTask returns per-task statistics keyed by task ID. When the
// collector tracks tasks online (TrackByTask — required in streaming
// mode, where there is no completion log), the incrementally built map
// is returned; otherwise the exact mode's completion log is replayed.
func (c *Collector) ByTask() map[int]*TaskStat {
	if c.trackByTask {
		return c.perTask
	}
	out := map[int]*TaskStat{}
	for _, d := range c.done {
		j := d.job
		st, ok := out[j.Task.ID]
		if !ok {
			st = &TaskStat{Task: j.Task, Response: &metrics.Sample{}}
			out[j.Task.ID] = st
		}
		st.observe(j, d.at)
	}
	return out
}

// RenderByTask prints per-task statistics sorted by (misses desc,
// id asc) — the misbehaving tasks surface first.
func RenderByTask(stats map[int]*TaskStat) string {
	ids := make([]int, 0, len(stats))
	for id := range stats {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		sa, sb := stats[ids[a]], stats[ids[b]]
		if sa.Misses != sb.Misses {
			return sa.Misses > sb.Misses
		}
		return ids[a] < ids[b]
	})
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %6s %6s %10s %10s\n", "task", "done", "miss", "mean-resp", "p99-resp")
	for _, id := range ids {
		st := stats[id]
		fmt.Fprintf(&b, "%-24s %6d %6d %10.1f %10.0f\n",
			st.Task.Name, st.Completed, st.Misses, st.Response.Mean(), st.Response.Percentile(99))
	}
	return b.String()
}
